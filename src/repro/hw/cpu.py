"""The processor model: executes an application reference stream.

Each CPU consumes a per-processor stream of items emitted by a workload
driver:

* ``("visit", page, n_reads, n_writes, think_cycles)`` — the processor
  performs ``n_reads + n_writes`` accesses to ``page`` plus
  ``think_cycles`` of pure computation;
* ``("barrier", key)`` — synchronize with all other processors.

Pure-compute and bookkeeping time (busy cycles, TLB walk charges,
shootdown interrupts) is accumulated *lazily* in a pending-time buffer
and materialized as a single timeout whenever the processor is about to
interact with a shared resource (bus, network, page fault, barrier) or
the buffer exceeds ``FLUSH_QUANTUM_PCYCLES``.  This keeps hot loops at
zero events per visit while preserving the ordering of all contended
interactions, and guarantees that the per-category time account sums to
the processor's execution time.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

from repro.config import SimConfig
from repro.disk.controller import PrefetchMode
from repro.hw.accounting import CATEGORIES, TimeAccount
from repro.hw.cache import BLOCK_BYTES, CacheModel
from repro.hw.network import MeshNetwork
from repro.osim.pagetable import PageState
from repro.osim.sync import BarrierRegistry
from repro.sim import BandwidthPipe, Counter, Engine
from repro.sim.events import Event, Timeout

#: pending time is flushed at least this often (pcycles)
FLUSH_QUANTUM_PCYCLES = 20_000.0

#: shortest candidate run the epoch executor will batch — below this the
#: fixed per-epoch overhead loses to the per-item loop
MIN_EPOCH_ITEMS = 12

def _vector_min_items() -> int:
    """The scalar/NumPy crossover, tunable via ``NWCACHE_EPOCH_MIN_ITEMS``.

    Values below 1 (or garbage) fall back to the built-in default; the
    knob only moves the crossover between two bit-identical arms, so any
    setting is safe — it is a tuning lever, not a semantic switch.
    """
    raw = os.environ.get("NWCACHE_EPOCH_MIN_ITEMS", "")
    try:
        v = int(raw)
    except ValueError:
        return 128
    return v if v >= 1 else 128


#: epochs at least this long take the vectorized NumPy arms inside
#: ``Cpu._epoch_step`` (same arithmetic, array-at-a-time); shorter
#: epochs keep the scalar loops, which win under ~100 items
EPOCH_VECTOR_MIN_ITEMS = _vector_min_items()

#: longest run examined per epoch attempt, bounding per-attempt array
#: work (a longer run simply takes several epochs)
MAX_EPOCH_ITEMS = 8192

#: why epoch attempts stop short — the rejection-profiler taxonomy
#: (surfaced per run in ``RunResult.extras`` as ``epoch_rejected_*``):
#:
#: * ``window_miss``   — a page fell out of this CPU's resident window
#:   and the contended step was not applicable (static plan gutted)
#: * ``tlb_cap``       — the run's distinct pages overflow the TLB, so
#:   the first-occurrence replay proof no longer holds
#: * ``shared_dirty``  — the page is in motion with a payload another
#:   processor must not lose: INFLIGHT (being fetched elsewhere) or
#:   SWAPPING with the dirty bit set — genuine write-sharing traffic
#: * ``shared_clean``  — the page is SWAPPING but *clean*: read-only
#:   sharing caught mid-eviction.  The refault must still wait out the
#:   eviction's queued shootdown-window timeout (a real queued event),
#:   so the step cannot jump it — but the split keeps clean sharing
#:   from being misread as write interference in the profile
#: * ``ring_transit``  — the page is circulating on the optical ring
#:   and the batched ring-snoop chain could not claim/prove it
#: * ``contended_pipe``— a required clock jump would be refused (queued
#:   events before the target, bus/mesh occupied, or run-limit/horizon)
#: * ``fault_boundary``— the page is ABSENT and the batched fault chain
#:   could not be proven: the fault runs through the evented slow path
EPOCH_REJECT_REASONS = (
    "window_miss",
    "tlb_cap",
    "shared_dirty",
    "shared_clean",
    "ring_transit",
    "contended_pipe",
    "fault_boundary",
)


def _reject_reason(entry: Any, st: Any) -> str:
    """Classify a not-plainly-usable page against live table state.

    ``st`` is ``entry.state`` (passed in because every caller already
    has it).  MEMORY means the page was fine in the table but missed the
    resident window; the in-motion states split on the live dirty bit so
    the profiler separates write interference from read-only sharing.
    """
    if st is PageState.MEMORY:
        return "window_miss"
    if st is PageState.ABSENT:
        return "fault_boundary"
    if st is PageState.RING:
        return "ring_transit"
    if st is PageState.INFLIGHT or entry.dirty:
        return "shared_dirty"
    return "shared_clean"

#: stream item types
Item = Tuple[Any, ...]


class Cpu:
    """One processor: runs a reference stream against the VM system."""

    def __init__(
        self,
        engine: Engine,
        cfg: SimConfig,
        node: int,
        cache: CacheModel,
        vm: Any,
        network: MeshNetwork,
        mem_buses: List[BandwidthPipe],
        barriers: BarrierRegistry,
    ) -> None:
        self.engine = engine
        self.cfg = cfg
        self.node = node
        self.cache = cache
        self.vm = vm
        self.network = network
        self.mem_buses = mem_buses
        self.barriers = barriers
        self.acct = TimeAccount()
        self.stats = Counter()
        self._pending: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self._pending_sum = 0.0  #: running total of self._pending
        self._stolen: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self._stolen_sum = 0.0  #: running total of self._stolen
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: epoch-executor diagnostics (profiling only — surfaced in
        #: ``RunResult.extras`` when epochs ran, absent otherwise, and
        #: excluded from every bit-identity comparison)
        self.epoch_items = 0
        self.epoch_batches = 0
        self.epoch_attempted = 0
        self.epoch_accepted = 0
        self.epoch_rejects: Dict[str, int] = {}
        #: faults resolved as one batched jump chain inside a contended
        #: step (disk fetch / ring snoop), instead of the evented cascade
        self.epoch_fault_jumps = 0
        self.epoch_ring_jumps = 0
        #: batched fault/ring chains refused because the frame pool was
        #: under pressure (empty, at the low watermark, or leaving a
        #: deficit for the armed replacement daemon) — the genuinely
        #: unbatchable eviction regime
        self.epoch_fault_blocked_pressure = 0
        #: batched fault/ring chains refused because another event or
        #: transfer occupied the chain's jump window (busy pipe or link,
        #: pending settle, queued event before the final target)
        self.epoch_fault_blocked_window = 0
        self._epoch_skip = 0

    # -- lazy time ---------------------------------------------------------
    def add_pending(self, category: str, cycles: float) -> None:
        """Queue ``cycles`` of ``category`` time to materialize later."""
        self._pending[category] += cycles
        self._pending_sum += cycles

    def steal(self, category: str, cycles: float) -> None:
        """Another component (shootdown) consumes this CPU's cycles."""
        self._stolen[category] += cycles
        self._stolen_sum += cycles

    def _pending_total(self) -> float:
        # Maintained incrementally: summing the dict per visit was the
        # hottest per-item cost.  The sum resets to exactly 0.0 at every
        # flush, so float drift cannot accumulate across quanta.
        return self._pending_sum

    def _flush(self) -> Generator[Event, Any, None]:
        """Materialize pending time as one timeout and charge categories."""
        if self._stolen_sum:
            # Only walk the stolen dict when a shootdown actually charged
            # us since the last flush — this runs once per flush.
            for cat, v in self._stolen.items():
                if v:
                    self._pending[cat] += v
                    self._pending_sum += v
                    self._stolen[cat] = 0.0
            self._stolen_sum = 0.0
        total = self._pending_sum
        if total > 0.0:
            yield Timeout(self.engine, total)
            for cat in CATEGORIES:
                v = self._pending[cat]
                if v:
                    self.acct.charge(cat, v)
                    self._pending[cat] = 0.0
            self._pending_sum = 0.0

    # -- execution ---------------------------------------------------------
    def run(self, stream: Iterable[Item]) -> Generator[Event, Any, None]:
        """The CPU process: execute the whole stream, then finish."""
        self.started_at = self.engine.now
        for item in stream:
            kind = item[0]
            if kind == "visit":
                _, page, n_reads, n_writes, think = item
                yield from self._visit(page, n_reads, n_writes, think)
            elif kind == "barrier":
                yield from self._flush()
                t0 = self.engine.now
                yield self.barriers.get(item[1]).wait()
                self.acct.charge("other", self.engine.now - t0)
                self.stats.add("barriers")
            else:
                raise ValueError(f"unknown stream item {item!r}")
        yield from self._flush()
        self.finished_at = self.engine.now

    def run_compiled(
        self, trace: Any, proc: int, page_base: int
    ) -> Generator[Event, Any, None]:
        """Trace-fed fast path: execute a compiled trace's arrays directly.

        Semantically identical to :meth:`run` over the decoded item
        stream — same yields in the same order, same charges, same final
        counters — but with the per-item work inlined: no driver
        generator to resume, no ``_visit`` sub-generator per item, no
        per-item counter updates (visit/barrier stats are accumulated in
        locals and added once at the end; nothing observes them mid-run).
        The ``self._pending`` dict is still updated item by item, because
        the audit invariants inspect it between events.
        """
        from repro.core.trace import KIND_VISIT

        self.started_at = self.engine.now
        # Cached bulk decode to plain Python scalars (see
        # CompiledTrace.columns): bit-identical arithmetic, paid once per
        # trace rather than once per run.
        kinds, page_col, read_col, write_col, think_col = trace.columns(proc)
        barrier_keys = trace.barrier_keys
        engine = self.engine
        vm = self.vm
        fast_access = vm.fast_access
        resolve = vm.resolve
        cache_visit = self.cache.visit
        barrier_get = self.barriers.get
        acct = self.acct
        acct_charge = acct.charge
        acct_times = acct.times
        pending = self._pending
        stolen = self._stolen
        mem_buses = self.mem_buses
        network = self.network
        net_route_cache = network._route_cache
        net_link_rate = network._link_rate
        node = self.node
        remote_latency = self.cfg.remote_latency_pcycles
        n_visits = n_slow = n_remote = n_barriers = 0
        # The ``_flush()`` blocks below are :meth:`_flush`, inlined: a
        # flush precedes every contended interaction, so delegating to the
        # sub-generator (one allocation + double dispatch per flush) was a
        # measurable share of the per-item cost.  The logic and float
        # arithmetic are identical; ``self._pending_sum`` and the dicts
        # stay current at every yield for the audit invariants.
        #
        # zip instead of indexing: one tuple unpack per item replaces five
        # list subscripts (for barriers, ``pg`` carries the key index).
        for kind, pg, n_reads, n_writes, think in zip(
            kinds, page_col, read_col, write_col, think_col
        ):
            if kind == KIND_VISIT:
                n_visits += 1
                page = page_base + pg
                is_write = n_writes > 0
                home = fast_access(node, page, is_write)
                if home is None:
                    # Page fault (or wait on a page in motion): slow path.
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
                    home = yield from resolve(node, page, is_write, acct)
                    n_slow += 1
                busy, miss_bytes = cache_visit(page, n_reads + n_writes)
                v = busy + think
                pending["other"] += v
                self._pending_sum += v
                if miss_bytes:
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
                    t0 = engine._now
                    # BandwidthPipe.transfer, inlined: the same request /
                    # timeout / release sequence without allocating a
                    # delegate generator per miss (identical events).
                    bus = mem_buses[home]
                    req = bus._server.request(0)
                    yield req
                    try:
                        yield Timeout(
                            engine, bus.overhead + miss_bytes / bus.rate
                        )
                        bus.bytes_transferred += miss_bytes
                    finally:
                        bus._server.release(req)
                    if home != node:
                        # MeshNetwork.transfer, inlined likewise (home !=
                        # node, so the route always has links to hold).
                        t0n = engine._now
                        ent = net_route_cache.get((home, node))
                        if ent is None:
                            ent = network._route_entry(home, node)
                        links, fixed, _h = ent
                        requests = []
                        try:
                            for res in links:
                                nreq = res.request(0)
                                requests.append(nreq)
                                yield nreq
                            yield Timeout(
                                engine, fixed + miss_bytes / net_link_rate
                            )
                        finally:
                            for res, nreq in zip(links, requests):
                                res.release(nreq)
                        network.bytes_sent += miss_bytes
                        network.latency.record(engine._now - t0n)
                        yield Timeout(engine, remote_latency)
                        n_remote += 1
                    acct_charge("other", engine._now - t0)
                if self._pending_sum >= FLUSH_QUANTUM_PCYCLES:
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
            else:
                if self._stolen_sum:  # _flush(), inlined
                    for cat, sv in stolen.items():
                        if sv:
                            pending[cat] += sv
                            self._pending_sum += sv
                            stolen[cat] = 0.0
                    self._stolen_sum = 0.0
                total = self._pending_sum
                if total > 0.0:
                    yield Timeout(engine, total)
                    for cat, pv in pending.items():
                        if pv:
                            acct_times[cat] += pv
                            pending[cat] = 0.0
                    self._pending_sum = 0.0
                t0 = engine._now
                yield barrier_get(barrier_keys[pg]).wait()
                acct_charge("other", engine._now - t0)
                n_barriers += 1
        yield from self._flush()
        self.finished_at = engine.now
        stats = self.stats
        if n_visits:
            stats.add("visits", n_visits)
        if n_slow:
            stats.add("slow_accesses", n_slow)
        if n_remote:
            stats.add("remote_fetches", n_remote)
        if n_barriers:
            stats.add("barriers", n_barriers)

    def run_epochs(
        self, trace: Any, proc: int, page_base: int
    ) -> Generator[Event, Any, None]:
        """Epoch-accelerated replay of a compiled trace.

        Trajectory-identical to :meth:`run_compiled` — the golden traces,
        the differential oracle, and the epoch equivalence suites pin
        this — but maximal runs of visits that provably cannot interact
        with the rest of the machine are executed as single vectorized
        steps (:meth:`_epoch_step`), and the evented waits that remain
        first attempt an uncontended clock jump (``Engine.try_jump``,
        ``BandwidthPipe.try_jump_transfer``,
        ``MeshNetwork.try_jump_transfer``) before falling back to real
        event scheduling.

        Fallback boundaries are exact: an epoch is revalidated against
        live TLB/cache/page-table state at its start and runs without a
        single yield, so faults, contention, interrupts, and injected
        failures — which can only land at event boundaries — always see
        the same machine state as the per-item path, and force per-item
        execution around the damage.
        """
        from repro.core.trace import KIND_VISIT

        self.started_at = self.engine.now
        kinds, page_col, read_col, write_col, think_col = trace.columns(proc)
        cache = self.cache
        plan = trace.epoch_plan(proc, cache._window, cache._cycles_per_access)
        next_b = plan.boundary_list
        barrier_keys = trace.barrier_keys
        engine = self.engine
        try_jump = engine.try_jump
        # Fast-refuse guard for the flush jumps below: when the next
        # queued event is due at or before the jump target, try_jump can
        # only say no — skip the call.  (try_jump itself re-checks this
        # plus the run-limit and multi-dispatch conditions.)
        equeue = engine._queue
        vm = self.vm
        fast_access = vm.fast_access
        resolve = vm.resolve
        cache_visit = cache.visit
        barrier_get = self.barriers.get
        acct = self.acct
        acct_charge = acct.charge
        acct_times = acct.times
        pending = self._pending
        stolen = self._stolen
        mem_buses = self.mem_buses
        network = self.network
        net_route_cache = network._route_cache
        net_link_rate = network._link_rate
        node = self.node
        remote_latency = self.cfg.remote_latency_pcycles
        n_visits = n_slow = n_remote = n_barriers = 0
        # The per-item arm below is :meth:`run_compiled`'s loop body with
        # index-based access and a jump attempt in front of every yield;
        # the ``_flush()`` blocks are :meth:`_flush`, inlined, likewise
        # jump-first.  ``attempt_from`` suppresses epoch re-attempts over
        # a prefix that just failed validation until execution passes the
        # item that broke the proof (it will fault or miss, changing the
        # state the proof depends on).
        n = len(kinds)
        i = 0
        # A stream with no candidate run long enough never attempts an
        # epoch: pinning attempt_from past the end makes the per-item
        # check a single always-false integer compare.  hard_from plays
        # the same role for the contended step, which only needs the run
        # to be barrier-free — window misses are fair game — but cannot
        # run under the audit tick hook (the hook would observe state
        # mid-commit between the step's internal jumps).
        attempt_from = 0 if plan.max_run >= MIN_EPOCH_ITEMS else n
        hard_b = plan.hard_list
        hard_from = (
            0
            if engine._tick_hook is None
            and plan.max_hard_run >= MIN_EPOCH_ITEMS
            else n
        )
        while i < n:
            if kinds[i] == KIND_VISIT:
                if i >= attempt_from and next_b[i] - i >= MIN_EPOCH_ITEMS:
                    c = self._epoch_step(plan, i, next_b[i], page_base)
                    if c:
                        n_visits += c
                        i += c
                        if self._pending_sum >= FLUSH_QUANTUM_PCYCLES:
                            if self._stolen_sum:  # _flush(), inlined
                                for cat, sv in stolen.items():
                                    if sv:
                                        pending[cat] += sv
                                        self._pending_sum += sv
                                        stolen[cat] = 0.0
                                self._stolen_sum = 0.0
                            total = self._pending_sum
                            if total > 0.0:
                                if (
                                    equeue
                                    and equeue[0][0] <= engine._now + total
                                ) or not try_jump(total, 1):
                                    yield Timeout(engine, total)
                                for cat, pv in pending.items():
                                    if pv:
                                        acct_times[cat] += pv
                                        pending[cat] = 0.0
                                self._pending_sum = 0.0
                        continue
                    attempt_from = self._epoch_skip
                if i >= hard_from and hard_b[i] - i >= MIN_EPOCH_ITEMS:
                    c = self._contended_step(plan, i, hard_b[i], page_base)
                    if c:
                        n_visits += c
                        i += c
                        if self._pending_sum >= FLUSH_QUANTUM_PCYCLES:
                            if self._stolen_sum:  # _flush(), inlined
                                for cat, sv in stolen.items():
                                    if sv:
                                        pending[cat] += sv
                                        self._pending_sum += sv
                                        stolen[cat] = 0.0
                                self._stolen_sum = 0.0
                            total = self._pending_sum
                            if total > 0.0:
                                if (
                                    equeue
                                    and equeue[0][0] <= engine._now + total
                                ) or not try_jump(total, 1):
                                    yield Timeout(engine, total)
                                for cat, pv in pending.items():
                                    if pv:
                                        acct_times[cat] += pv
                                        pending[cat] = 0.0
                                self._pending_sum = 0.0
                        continue
                    hard_from = self._epoch_skip
                n_visits += 1
                page = page_base + page_col[i]
                n_reads = read_col[i]
                n_writes = write_col[i]
                is_write = n_writes > 0
                home = fast_access(node, page, is_write)
                if home is None:
                    # Page fault (or wait on a page in motion): slow path.
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        if (
                            equeue and equeue[0][0] <= engine._now + total
                        ) or not try_jump(total, 1):
                            yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
                    home = yield from resolve(node, page, is_write, acct)
                    n_slow += 1
                busy, miss_bytes = cache_visit(page, n_reads + n_writes)
                v = busy + think_col[i]
                pending["other"] += v
                self._pending_sum += v
                if miss_bytes:
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        if (
                            equeue and equeue[0][0] <= engine._now + total
                        ) or not try_jump(total, 1):
                            yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
                    t0 = engine._now
                    bus = mem_buses[home]
                    if not bus.try_jump_transfer(miss_bytes):
                        # BandwidthPipe.transfer, inlined (see
                        # run_compiled).
                        req = bus._server.request(0)
                        yield req
                        try:
                            yield Timeout(
                                engine, bus.overhead + miss_bytes / bus.rate
                            )
                            bus.bytes_transferred += miss_bytes
                        finally:
                            bus._server.release(req)
                    if home != node:
                        if not network.try_jump_transfer(
                            home, node, miss_bytes
                        ):
                            # MeshNetwork.transfer, inlined likewise.
                            t0n = engine._now
                            ent = net_route_cache.get((home, node))
                            if ent is None:
                                ent = network._route_entry(home, node)
                            links, fixed, _h = ent
                            requests = []
                            try:
                                for res in links:
                                    nreq = res.request(0)
                                    requests.append(nreq)
                                    yield nreq
                                yield Timeout(
                                    engine, fixed + miss_bytes / net_link_rate
                                )
                            finally:
                                for res, nreq in zip(links, requests):
                                    res.release(nreq)
                            network.bytes_sent += miss_bytes
                            network.latency.record(engine._now - t0n)
                        if not try_jump(remote_latency, 1):
                            yield Timeout(engine, remote_latency)
                        n_remote += 1
                    acct_charge("other", engine._now - t0)
                if self._pending_sum >= FLUSH_QUANTUM_PCYCLES:
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        if (
                            equeue and equeue[0][0] <= engine._now + total
                        ) or not try_jump(total, 1):
                            yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
            else:
                if self._stolen_sum:  # _flush(), inlined
                    for cat, sv in stolen.items():
                        if sv:
                            pending[cat] += sv
                            self._pending_sum += sv
                            stolen[cat] = 0.0
                    self._stolen_sum = 0.0
                total = self._pending_sum
                if total > 0.0:
                    if (
                        equeue and equeue[0][0] <= engine._now + total
                    ) or not try_jump(total, 1):
                        yield Timeout(engine, total)
                    for cat, pv in pending.items():
                        if pv:
                            acct_times[cat] += pv
                            pending[cat] = 0.0
                    self._pending_sum = 0.0
                t0 = engine._now
                yield barrier_get(barrier_keys[page_col[i]]).wait()
                acct_charge("other", engine._now - t0)
                n_barriers += 1
            i += 1
        yield from self._flush()
        self.finished_at = engine.now
        stats = self.stats
        if n_visits:
            stats.add("visits", n_visits)
        if n_slow:
            stats.add("slow_accesses", n_slow)
        if n_remote:
            stats.add("remote_fetches", n_remote)
        if n_barriers:
            stats.add("barriers", n_barriers)

    def _epoch_step(
        self, plan: Any, i: int, j: int, page_base: int
    ) -> int:
        """Execute trace items ``[i, j)`` as one vectorized step, if the
        run is provably non-interacting.  Returns the number of items
        consumed (0 when nothing provable; ``self._epoch_skip`` then
        holds the first index worth re-attempting).

        The candidate run (``plan.next_boundary``) contains only visits
        whose static reuse distance fits the resident window.  Static
        markers are a heuristic — invalidations make static hits miss,
        and pre-existing window members make static misses hit — so the
        run is truncated to the prefix whose distinct pages all pass live
        validation: present in this CPU's cache window and MEMORY in the
        page table.  Over that prefix every visit is a window hit, which
        makes the whole step yield-free and therefore *atomic*: no other
        process can run, so the validation cannot go stale mid-epoch, no
        events are consumed, and the clock does not move.

        Bit-identical bookkeeping is replayed in batch:

        * TLB — replaying only each distinct page's *first* occurrence is
          exact, because eviction victims are always entries untouched
          during the run (touched entries sit behind them in LRU order,
          and the untouched pool cannot drain: evictions <= untouched
          originals whenever the distinct count fits the TLB, which is
          checked).  Counters follow (hits = items - misses), and entries
          are re-ordered afterwards to last-touch order, since the kernel
          refreshes on every visit.
        * pending time — the ``_pending_sum`` float chain is reproduced
          exactly by re-running the same additions in the same order over
          the plan's precomputed busy+think costs, with TLB-walk charges
          spliced in before their item; the scan also yields the first
          index where the flush quantum trips: the epoch consumes up to
          and including that item, and the outer loop flushes — exactly
          where the kernel would.
        * cache window / replacement policy — every visit hits, so
          membership is static; per-visit LRU refreshes collapse to one
          move per distinct page in last-touch order (safe for the
          policies that declare ``epoch_touch_safe``; the machine gates
          epochs on that).  Dirty bits are ORed per distinct page.
        """
        j = min(j, i + MAX_EPOCH_ITEMS)
        self.epoch_attempted += 1
        reason: Optional[str] = None
        engine = self.engine
        # Long epochs cross several flush quanta; those flushes can be
        # performed *inside* the step as clock jumps (_epoch_quanta),
        # amortizing the per-epoch scans over the whole run.  That is
        # exact only while nothing can observe state between the internal
        # flushes: the audit tick hook inspects the machine mid-epoch,
        # and pending stolen time changes the first flush's composition —
        # either forces single-quantum mode (one crossing per call, the
        # outer loop flushes).
        single = engine._tick_hook is not None or self._stolen_sum != 0.0
        # Cap the scan at what this call can plausibly commit — items
        # past the cap are wasted work.  Single-quantum mode commits at
        # most one crossing; multi-quantum mode commits until its first
        # refused flush jump, i.e. roughly until the event queue's head
        # falls due (with nothing queued, the whole span is in play).
        # Estimates come from the plan's global busy prefix sums, plus
        # slack for the float-rounding difference vs the kernel's local
        # chains; TLB-walk charges only pull the true crossing and the
        # true refusal earlier.  A mis-estimate is never a correctness
        # problem: the exact crossings are still found by the chains
        # below, and a shorter validated prefix is always a correct
        # epoch.
        busy_cum = plan.busy_cum
        base = float(busy_cum[i]) - self._pending_sum
        window = FLUSH_QUANTUM_PCYCLES
        if not single:
            equeue = engine._queue
            if equeue:
                horizon = equeue[0][0] - engine._now
                if horizon > window:
                    window = horizon
            else:
                window = float("inf")
        if window != float("inf"):
            est = int(np.searchsorted(
                busy_cum, base + window, side="left",
            )) - i
            if i + est + 4 < j:
                j = i + est + 4
        span = j - i
        vm = self.vm
        table = vm.table
        resident = self.cache._resident
        tlb = vm.tlbs[self.node]
        entries = tlb._entries
        cap = tlb.n_entries
        pages_list = plan.pages_list
        MEMORY = PageState.MEMORY
        # -- chronological first-occurrence scan + live validation.
        # Short runs use a fused python scan whose early exit keeps
        # failed attempts at a few dict probes (attempts fail often under
        # memory pressure, where invalidations gut the static plan);
        # long runs lift the first-occurrence scan to numpy and validate
        # the (few) distinct pages in python.
        chron_pages: List[int]
        chron_off: List[int]
        homes: List[int] = []
        if span >= EPOCH_VECTOR_MIN_ITEMS:
            uniq, first_off = np.unique(plan.pages[i:j], return_index=True)
            order = np.argsort(first_off, kind="stable")
            chron_pages = uniq[order].tolist()
            chron_off = first_off[order].tolist()
            valid = span
            if len(chron_pages) > cap:
                # The first-occurrence TLB replay is only exact while
                # every distinct page fits the TLB at once.
                valid = chron_off[cap]
                del chron_pages[cap:], chron_off[cap:]
                reason = "tlb_cap"
            for k, p in enumerate(chron_pages):
                g = page_base + p
                if g in resident:
                    entry = table[g]
                    if entry.state is MEMORY:
                        homes.append(entry.node)
                        continue
                # This page would miss (or fault): the epoch ends
                # strictly before its first occurrence.
                entry = table[g]
                reason = _reject_reason(entry, entry.state)
                valid = chron_off[k]
                del chron_pages[k:], chron_off[k:]
                break
        else:
            seen = set()
            seen_add = seen.add
            chron_pages = []
            chron_off = []
            valid = span
            for off in range(span):
                p = pages_list[i + off]
                if p in seen:
                    continue
                g = page_base + p
                if g in resident:
                    entry = table[g]
                    if entry.state is MEMORY:
                        if len(seen) >= cap:
                            # TLB-replay exactness bound, as above.
                            valid = off
                            reason = "tlb_cap"
                            break
                        seen_add(p)
                        chron_pages.append(p)
                        chron_off.append(off)
                        homes.append(entry.node)
                        continue
                entry = table[g]
                reason = _reject_reason(entry, entry.state)
                valid = off
                break
        if valid < MIN_EPOCH_ITEMS:
            self._epoch_skip = i + valid + 1
            # No break within a horizon-clamped span means the queue's
            # head (or the run limit) cut the candidate short.
            r = reason if reason is not None else "contended_pipe"
            self.epoch_rejects[r] = self.epoch_rejects.get(r, 0) + 1
            return 0
        # -- dry-run TLB replay on a shadow copy: which first
        # occurrences take the miss branch (and charge a walk)?
        tlb_miss = self.cfg.tlb_miss_pcycles
        shadow = dict(entries)
        miss_offs: List[int] = []  # ascending (chron_off is ascending)
        for k, p in enumerate(chron_pages):
            g = page_base + p
            h = shadow.pop(g, None)
            if h is None:
                miss_offs.append(chron_off[k])
                if len(shadow) >= cap:
                    del shadow[next(iter(shadow))]
                h = homes[k]
            shadow[g] = h
        # -- flush-quantum crossing over the exact charge sequence: the
        # kernel adds each item's TLB-walk charge (when its page's first
        # occurrence misses) before its busy+think cost and checks the
        # quantum after the item.  The same adds in the same order on the
        # same doubles reproduce the ``_pending_sum`` float chain bit for
        # bit (np.cumsum accumulates sequentially, so both arms below
        # produce identical doubles).  The epoch consumes up to and
        # including the crossing item; the outer loop then flushes,
        # exactly where the kernel would.
        busy_list = plan.busy_list
        pending_sum = self._pending_sum
        pending_done = False
        if not single and valid >= EPOCH_VECTOR_MIN_ITEMS:
            # Multi-quantum: flushes inside the step, chains committed
            # there.
            c = self._epoch_quanta(plan, i, valid, miss_offs, tlb_miss)
            pending_done = True
        elif valid >= EPOCH_VECTOR_MIN_ITEMS:
            bts = plan.busy_think[i:i + valid]
            if miss_offs:
                moffs = np.asarray(miss_offs, dtype=np.int64)
                seq = np.insert(bts, moffs, tlb_miss)
                cum = np.cumsum(np.concatenate(((pending_sum,), seq)))
                ar = np.arange(valid)
                end_vals = cum[
                    1 + ar + np.searchsorted(moffs, ar, side="right")
                ]
            else:
                end_vals = np.cumsum(
                    np.concatenate(((pending_sum,), bts))
                )[1:]
            k_q = int(
                np.searchsorted(end_vals, FLUSH_QUANTUM_PCYCLES, side="left")
            )
            c = valid if k_q >= valid else k_q + 1
            pending_sum = float(end_vals[c - 1])
        else:
            c = valid
            mi = 0
            n_mo = len(miss_offs)
            for off in range(valid):
                if mi < n_mo and miss_offs[mi] == off:
                    pending_sum += tlb_miss
                    mi += 1
                pending_sum += busy_list[i + off]
                if pending_sum >= FLUSH_QUANTUM_PCYCLES:
                    c = off + 1
                    break
        # -- commit: batch-apply the per-item bookkeeping for [i, i + c)
        n_miss = 0
        evictions = 0
        home_of = {}
        for k, p in enumerate(chron_pages):
            if chron_off[k] >= c:
                break
            g = page_base + p
            # A TLB hit refreshes the *cached* home (the kernel never
            # consults the table on a hit); only a miss installs the
            # table's node.
            h = entries.pop(g, None)
            if h is None:
                n_miss += 1
                if len(entries) >= cap:
                    del entries[next(iter(entries))]
                    evictions += 1
                h = homes[k]
            entries[g] = h
            home_of[g] = h
        tlb._hits += c - n_miss
        tlb._misses += n_miss
        tlb._evictions += evictions
        cache = self.cache
        cache._hits += c
        # Last-touch order of the consumed prefix's distinct pages: the
        # kernel's per-visit LRU refreshes leave exactly this ordering in
        # the TLB, the cache window, and the home policies.  (np.unique
        # over the reversed segment keeps each page's *first* reversed
        # occurrence = its last touch; re-sorting by that index and
        # flipping recovers least-recently-touched-first, matching the
        # python scan.)
        if c >= EPOCH_VECTOR_MIN_ITEMS:
            seg_c = plan.pages[i:i + c]
            rev_uniq, rev_idx = np.unique(seg_c[::-1], return_index=True)
            lt_pages = rev_uniq[
                np.argsort(rev_idx, kind="stable")[::-1]
            ].tolist()
        else:
            seen2 = set()
            seen2_add = seen2.add
            last_touch: List[int] = []
            for off in range(c - 1, -1, -1):
                p = pages_list[i + off]
                if p not in seen2:
                    seen2_add(p)
                    last_touch.append(p)
            lt_pages = last_touch[::-1]
        vres = vm.resident
        move_res = resident.move_to_end
        for p in lt_pages:
            g = page_base + p
            h = entries.pop(g)
            entries[g] = h
            move_res(g)
            vres[home_of[g]].touch(g)
        write_cum = plan.write_cum
        if write_cum[i + c] == write_cum[i]:
            # Read-only-sharing epoch: no item writes, so no dirty bit
            # can change — skip the marking scan entirely (two prefix
            # lookups instead of O(c) work).
            pass
        elif c >= EPOCH_VECTOR_MIN_ITEMS:
            wr = plan.is_write[i:i + c]
            for p in np.unique(seg_c[wr]).tolist():
                table[page_base + p].dirty = True
        else:
            write_list = plan.write_list
            dirty_done = set()
            for off in range(c):
                if write_list[i + off]:
                    p = pages_list[i + off]
                    if p not in dirty_done:
                        dirty_done.add(p)
                        table[page_base + p].dirty = True
        # -- pending time: per-category chains, each bit-identical to
        # the kernel's scalar accumulation order (np.cumsum adds
        # sequentially, so the long-run arm lands on the same doubles).
        # The multi-quantum path committed these inside _epoch_quanta.
        if not pending_done:
            pending = self._pending
            if c >= EPOCH_VECTOR_MIN_ITEMS:
                pending["other"] = float(
                    np.cumsum(
                        np.concatenate(
                            ((pending["other"],), plan.busy_think[i:i + c])
                        )
                    )[-1]
                )
            else:
                po = pending["other"]
                for off in range(c):
                    po += busy_list[i + off]
                pending["other"] = po
            if n_miss:
                pt = pending["tlb"]
                for _ in range(n_miss):
                    pt += tlb_miss
                pending["tlb"] = pt
            self._pending_sum = pending_sum
        self.epoch_items += c
        self.epoch_batches += 1
        self.epoch_accepted += 1
        return c

    def _contended_step(
        self, plan: Any, i: int, j: int, page_base: int
    ) -> int:
        """Execute trace items ``[i, j)`` — *including* resident-window
        misses — as one fused batched step.  Returns the number of items
        consumed (0 when the very first item needs the evented path;
        ``self._epoch_skip`` then holds the next index worth attempting).

        Where :meth:`_epoch_step` only accepts runs it can prove are pure
        window hits, this step follows the per-item arm of
        :meth:`run_epochs` item by item and *commits* each one whose
        interactions all collapse into clock jumps.  The protocol per
        item is snapshot → revalidate → execute:

        * **snapshot/revalidate** — classify the item against live state
          without mutating anything: TLB entry (``entries.get``), page-
          table state on a TLB miss, window residency.  A page that is
          ABSENT (a real fault) or in motion on another processor
          (INFLIGHT/SWAPPING/RING) stops the step *before* the item.
        * **prove the jumps** — for a window miss, pre-compute the exact
          ascending target chain the kernel would produce — pending
          flush (with the stolen-time fold reproduced add by add), home
          memory bus, mesh route, remote latency — and refuse the item
          unless every queued event falls strictly after the final
          target, the run limit holds, and every pipe on the chain is
          idle: precisely the conditions under which ``Engine.try_jump``
          / ``try_jump_transfer`` are guaranteed to succeed.
        * **execute** — replay the kernel's mutations in kernel order
          (TLB bookkeeping, window update, pending-time float chains
          addition by addition) and issue the *real* jump calls, which
          advance the clock, busy integrals, latency tallies, and event
          counts exactly as the evented path would.

        Because the whole step is yield-free, no other process can run
        mid-step: validation cannot go stale, and stopping before a
        blocked item leaves the machine in exactly the state the
        per-item arm expects (it redoes the classification and takes the
        evented path).  The step cannot run under the audit tick hook —
        the hook fires inside the jumps and would observe counters that
        are committed in bulk at step exit (the caller gates on this).
        """
        j = min(j, i + MAX_EPOCH_ITEMS)
        self.epoch_attempted += 1
        engine = self.engine
        if engine._multi_dispatch:
            self._epoch_skip = i + 1
            self.epoch_rejects["contended_pipe"] = (
                self.epoch_rejects.get("contended_pipe", 0) + 1
            )
            return 0
        node = self.node
        vm = self.vm
        table = vm.table
        tlb = vm.tlbs[node]
        entries = tlb._entries
        # First-item sharing gate, ahead of the full local hoist below:
        # on eviction-heavy traces many rejected attempts die immediately
        # on a page mid-flight on another processor, and the gate's
        # classification is byte-for-byte the loop's own first-item arm.
        # ABSENT and RING pages fall through — the loop's batched fault
        # pipelines may absorb them.
        g0 = page_base + plan.pages_list[i]
        if g0 not in entries:
            ent0 = table[g0]
            st0 = ent0.state
            if st0 is PageState.INFLIGHT or st0 is PageState.SWAPPING:
                self._epoch_skip = i + 1
                r = _reject_reason(ent0, st0)
                self.epoch_rejects[r] = self.epoch_rejects.get(r, 0) + 1
                return 0
        equeue = engine._queue
        limit = engine._limit
        try_jump = engine.try_jump
        vres = vm.resident
        cap = tlb.n_entries
        cache = self.cache
        resident = cache._resident
        move_res = resident.move_to_end
        window = cache._window
        cold_mb = cache._cold_miss_bytes
        page_size = cache._page_size
        pages_list = plan.pages_list
        busy_list = plan.busy_list
        write_list = plan.write_list
        nacc_list = plan.naccess_list
        pending = self._pending
        stolen = self._stolen
        acct_times = self.acct.times
        mem_buses = self.mem_buses
        network = self.network
        net_route_cache = network._route_cache
        net_link_rate = network._link_rate
        tlb_miss = self.cfg.tlb_miss_pcycles
        remote_latency = self.cfg.remote_latency_pcycles
        MEMORY = PageState.MEMORY
        ABSENT = PageState.ABSENT
        # Working copies of every float chain the kernel threads through
        # the per-item loop; written back once at step exit.  Nothing can
        # observe the dicts mid-step (yield-free), so locals are exact.
        psum = self._pending_sum
        po = pending["other"]
        ptlb = pending["tlb"]
        ao = acct_times["other"]
        atl = acct_times["tlb"]
        stolen_rem = self._stolen_sum
        now = engine._now
        t_hits = t_misses = t_ev = 0
        c_hits = c_misses = 0
        n_remote = 0
        reason = "contended_pipe"
        off = i
        while off < j:
            g = page_base + pages_list[off]
            h = entries.get(g)
            ent = None
            if h is None:
                ent = table[g]
                st = ent.state
                if st is not MEMORY:
                    if st is ABSENT or st is PageState.RING:
                        # A real fault: attempt the whole resolve chain
                        # (page walk, disk/ring service, bus crossings,
                        # daemon kicks, refill) as one proven ascending
                        # jump sequence — the batched fault pipeline.
                        batched = (
                            self._batched_fault
                            if st is ABSENT
                            else self._batched_ring
                        )(
                            g, ent, write_list[off], busy_list[off],
                            nacc_list[off], psum, po, ptlb, ao, atl,
                            stolen_rem,
                        )
                        if batched is not None:
                            psum, po, ptlb, ao, atl, stolen_rem = batched
                            now = engine._now
                            off += 1
                            if psum >= FLUSH_QUANTUM_PCYCLES:
                                break
                            continue
                    # Stop *before* the item: nothing committed yet for
                    # it, so the per-item arm redoes the classification
                    # and takes the slow path.
                    reason = _reject_reason(ent, st)
                    break
                home = ent.node
            else:
                home = h
            v = busy_list[off]
            wr = write_list[off]
            if g in resident:
                mb = 0
            else:
                na = nacc_list[off]
                mb = max(cold_mb, min(page_size, na * BLOCK_BYTES))
                mb = min(mb, page_size)
                if mb:
                    # Prove the whole jump chain before touching state.
                    # Flush total: the psum chain after this item's adds
                    # plus the stolen fold, reproduced add by add.
                    tot = psum
                    if h is None:
                        tot = tot + tlb_miss
                    tot = tot + v
                    if stolen_rem:
                        for sv in stolen.values():
                            if sv:
                                tot = tot + sv
                    t_last = now + tot if tot > 0.0 else now
                    bus = mem_buses[home]
                    srv = bus._server
                    if srv.users or srv.queue:
                        break
                    t_last = t_last + (bus.overhead + mb / bus.rate)
                    if home != node:
                        rent = net_route_cache.get((home, node))
                        if rent is None:
                            rent = network._route_entry(home, node)
                        links, fixed, hops = rent
                        blocked = False
                        for res in links:
                            if res.users or res.queue:
                                blocked = True
                                break
                        if blocked:
                            break
                        t_last = t_last + (
                            fixed + mb / net_link_rate if hops else fixed
                        )
                        t_last = t_last + remote_latency
                    if (equeue and equeue[0][0] <= t_last) or t_last > limit:
                        break
            # -- commit, in kernel order: fast_access ...
            if h is None:
                t_misses += 1
                ptlb += tlb_miss
                psum += tlb_miss
                if len(entries) >= cap:
                    del entries[next(iter(entries))]
                    t_ev += 1
                entries[g] = home
                vres[home].touch(g)
                if wr:
                    ent.dirty = True
            else:
                del entries[g]
                entries[g] = home
                t_hits += 1
                vres[home].touch(g)
                if wr:
                    table[g].dirty = True
            # ... then cache.visit ...
            if mb == 0 and g in resident:
                move_res(g)
                c_hits += 1
                po += v
                psum += v
            else:
                c_misses += 1
                resident[g] = None
                while len(resident) > window:
                    resident.popitem(last=False)
                po += v
                psum += v
                if mb:
                    # ... flush (fold + jump + drain) ...
                    if stolen_rem:
                        for cat, sv in stolen.items():
                            if sv:
                                if cat == "other":
                                    po += sv
                                elif cat == "tlb":
                                    ptlb += sv
                                else:
                                    pending[cat] += sv
                                psum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                        stolen_rem = 0.0
                    if psum > 0.0:
                        if not try_jump(psum, 1):
                            raise RuntimeError(
                                "contended epoch: proven flush jump refused"
                            )
                        for cat, pv in pending.items():
                            if pv and cat != "other" and cat != "tlb":
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        if ptlb:
                            atl += ptlb
                            ptlb = 0.0
                        if po:
                            ao += po
                            po = 0.0
                        psum = 0.0
                    # ... and the proven transfer chain, via the real
                    # jump calls (side effects identical to the evented
                    # path: busy integrals, byte counts, latency tally,
                    # event ids).
                    t0 = engine._now
                    if not bus.try_jump_transfer(mb):
                        raise RuntimeError(
                            "contended epoch: proven bus jump refused"
                        )
                    if home != node:
                        if not network.try_jump_transfer(home, node, mb):
                            raise RuntimeError(
                                "contended epoch: proven mesh jump refused"
                            )
                        if not try_jump(remote_latency, 1):
                            raise RuntimeError(
                                "contended epoch: proven latency jump refused"
                            )
                        n_remote += 1
                    now = engine._now
                    ao += now - t0
            off += 1
            if psum >= FLUSH_QUANTUM_PCYCLES:
                # Quantum crossed on this item: consume through it and
                # let the caller's outer flush run, exactly where the
                # kernel would flush.
                break
        c = off - i
        pending["other"] = po
        pending["tlb"] = ptlb
        self._pending_sum = psum
        acct_times["other"] = ao
        acct_times["tlb"] = atl
        tlb._hits += t_hits
        tlb._misses += t_misses
        tlb._evictions += t_ev
        cache._hits += c_hits
        cache._misses += c_misses
        if n_remote:
            self.stats.add("remote_fetches", n_remote)
        if c == 0:
            self._epoch_skip = i + 1
            self.epoch_rejects[reason] = self.epoch_rejects.get(reason, 0) + 1
            return 0
        self.epoch_items += c
        self.epoch_batches += 1
        self.epoch_accepted += 1
        return c

    def _batched_fault(
        self,
        g: int,
        ent: Any,
        wr: bool,
        v: float,
        na: int,
        psum: float,
        po: float,
        ptlb: float,
        ao: float,
        atl: float,
        stolen_rem: float,
    ) -> Optional[Tuple[float, float, float, float, float, float]]:
        """Resolve an ABSENT page as one batched jump chain, if provable.

        Collapses the per-item arm's fault cascade — pending flush, frame
        allocation, daemon kicks, control message, controller service,
        I/O + memory bus crossings, page installation, cache refill — into
        the exact ascending sequence of clock jumps the evented path would
        produce, then executes it through the real jump calls (identical
        busy integrals, byte counts, latency tallies, event ids).  Runs
        yield-free inside :meth:`_contended_step`, so the proof cannot go
        stale mid-chain.  Returns the updated pending-time working copies
        ``(psum, po, ptlb, ao, atl, stolen_rem)``, or ``None`` without
        touching anything when any link cannot be proven uncontended:

        * the frame pool is empty, the allocation would fire the
          low-watermark event, or it would leave a frame deficit for the
          armed replacement daemon (whose wake must stay a no-op re-park
          — under steady frame pressure this is the honest blocker);
        * the controller cannot answer synchronously: only OPTIMAL mode,
          or a plain NAIVE/STREAM cache hit that spawns no prefetch
          process, collapses;
        * a settle event is pending on the entry, a pipe or mesh link on
          the route is busy, or a queued event falls at or before the
          chain's final target (``Engine.try_jump``'s own refusal rule —
          targets ascend, so checking the last covers every jump).

        The daemon kicks are accounted *virtually*: a proven-no-op wake
        costs the same one event id / processed count the evented wake
        would, but the daemon stays parked on its existing event — a
        substitute event would orphan the real generator's callback.
        """
        engine = self.engine
        node = self.node
        vm = self.vm
        cfg = self.cfg
        pool = vm.pools[node]
        free = pool._free
        if not free:
            self.epoch_fault_blocked_pressure += 1
            return None
        lw = pool._low_watermark_event
        if (
            lw is not None
            and not lw.triggered
            and (len(free) - 1) < pool.min_free
        ):
            self.epoch_fault_blocked_pressure += 1
            return None
        se = ent._settle
        if se is not None and not se.triggered:
            self.epoch_fault_blocked_window += 1
            return None
        dw = vm._daemon_wakes[node]
        kick = dw is not None and not dw.triggered
        if kick and (pool.min_free + len(pool._waiters)) > (
            (len(free) - 1) + vm._pending_free[node]
        ):
            # The post-alloc deficit would make the woken daemon evict:
            # a genuine eviction cascade, not a jumpable no-op.
            self.epoch_fault_blocked_pressure += 1
            return None
        swap = vm.swap
        ctrl = swap.controller_of(g)
        io_node = swap.io_node_of(g)
        mode = ctrl.prefetch
        stream_hit = False
        if mode is not PrefetchMode.OPTIMAL:
            # NAIVE/STREAM collapse only on a plain cache hit: present,
            # not under an in-flight prefetch, and (STREAM) not part of a
            # detected sequential run — a streaming hit spawns a prefetch
            # process, which is real event scheduling.
            if g not in ctrl._slots or g in ctrl._inflight_prefetch:
                self.epoch_fault_blocked_window += 1
                return None
            if mode is PrefetchMode.STREAM:
                hist = ctrl._read_history
                if g - 1 in hist or g - 2 in hist:
                    self.epoch_fault_blocked_window += 1
                    return None
                stream_hit = True
        cache = self.cache
        if g in cache._resident:  # pragma: no cover - ABSENT pages are
            return None           # shot down from every window
        page_size = cache._page_size
        mb = max(cache._cold_miss_bytes, min(page_size, na * BLOCK_BYTES))
        mb = min(mb, page_size)
        psize = cfg.page_size
        io_bus = vm.io_buses[io_node]
        srv = io_bus._server
        if srv.users or srv.queue:
            self.epoch_fault_blocked_window += 1
            return None
        mem_bus = self.mem_buses[node]
        srv = mem_bus._server
        if srv.users or srv.queue:
            self.epoch_fault_blocked_window += 1
            return None
        net = self.network
        rc = net._route_cache
        out = rc.get((node, io_node))
        if out is None:
            out = net._route_entry(node, io_node)
        links_out, fixed_out, hops_out = out
        for res in links_out:
            if res.users or res.queue:
                self.epoch_fault_blocked_window += 1
                return None
        remote = io_node != node
        if remote:
            mem_bus_io = self.mem_buses[io_node]
            srv = mem_bus_io._server
            if srv.users or srv.queue:
                self.epoch_fault_blocked_window += 1
                return None
            back = rc.get((io_node, node))
            if back is None:
                back = net._route_entry(io_node, node)
            links_back, fixed_back, hops_back = back
            for res in links_back:
                if res.users or res.queue:
                    self.epoch_fault_blocked_window += 1
                    return None
        # -- the ascending target chain, reproduced add by add
        stolen = self._stolen
        tlb_miss = cfg.tlb_miss_pcycles
        tot = psum + tlb_miss
        if stolen_rem:
            for sv in stolen.values():
                if sv:
                    tot = tot + sv
        now = engine._now
        t = now + tot if tot > 0.0 else now
        nlr = net._link_rate
        cm = cfg.control_msg_bytes
        t = t + (fixed_out + cm / nlr if hops_out else fixed_out)
        t = t + cfg.controller_overhead_pcycles
        t = t + (io_bus.overhead + psize / io_bus.rate)
        if remote:
            t = t + (mem_bus_io.overhead + psize / mem_bus_io.rate)
            t = t + (fixed_back + psize / nlr if hops_back else fixed_back)
        t = t + (mem_bus.overhead + psize / mem_bus.rate)
        t = t + v
        if mb:
            t = t + (mem_bus.overhead + mb / mem_bus.rate)
        equeue = engine._queue
        if (equeue and equeue[0][0] <= t) or t > engine._limit:
            self.epoch_fault_blocked_window += 1
            return None
        # -- commit, in kernel order: fast_access's miss bookkeeping ...
        tlb = vm.tlbs[node]
        tlb._misses += 1
        ptlb += tlb_miss
        psum += tlb_miss
        pending = self._pending
        acct_times = self.acct.times
        try_jump = engine.try_jump
        # ... the pre-resolve flush (fold + jump + drain) ...
        if stolen_rem:
            for cat, sv in stolen.items():
                if sv:
                    if cat == "other":
                        po += sv
                    elif cat == "tlb":
                        ptlb += sv
                    else:
                        pending[cat] += sv
                    psum += sv
                    stolen[cat] = 0.0
            self._stolen_sum = 0.0
            stolen_rem = 0.0
        if psum > 0.0:
            if not try_jump(psum, 1):
                raise RuntimeError("batched fault: proven flush jump refused")
            for cat, pv in pending.items():
                if pv and cat != "other" and cat != "tlb":
                    acct_times[cat] += pv
                    pending[cat] = 0.0
            if ptlb:
                atl += ptlb
                ptlb = 0.0
            if po:
                ao += po
                po = 0.0
            psum = 0.0
        # ... resolve's disk fetch, collapsed ...
        frame = free.popleft()
        pool.stall.record(0.0)
        pool._notify_low()  # proven silent
        if kick:  # virtual daemon kick #1 (proven no-op re-park)
            engine.events_processed += 1
            engine.events_jumped += 1
            next(engine._eid)
        ent.to_inflight(node)
        t0 = engine._now
        if not net.try_jump_transfer(node, io_node, cm):
            raise RuntimeError(
                "batched fault: proven control-message jump refused"
            )
        if not try_jump(cfg.controller_overhead_pcycles, 1):
            raise RuntimeError("batched fault: proven controller jump refused")
        if mode is PrefetchMode.OPTIMAL:
            ctrl.note_optimal_read(g)
        else:
            # ctrl.read's cache-hit arm, collapsed (conditions above).
            if stream_hit:
                ctrl._read_history.append(g)
            ctrl._slots.move_to_end(g)
            ctrl.stats.add("read_hits")
        if not io_bus.try_jump_transfer(psize):
            raise RuntimeError("batched fault: proven I/O bus jump refused")
        if remote:
            if not mem_bus_io.try_jump_transfer(psize):
                raise RuntimeError(
                    "batched fault: proven remote bus jump refused"
                )
            if not net.try_jump_transfer(io_node, node, psize):
                raise RuntimeError("batched fault: proven mesh jump refused")
        if not mem_bus.try_jump_transfer(psize):
            raise RuntimeError(
                "batched fault: proven memory bus jump refused"
            )
        ent.to_memory(node, frame, dirty=False)
        vm.resident[node].insert(g)
        now = engine._now
        latency = now - t0
        self.acct.charge("fault", latency)
        metrics = vm.metrics
        counts = metrics.counts
        counts.add("faults")
        metrics.fault_latency.record(latency)
        counts.add("disk_cache_hits")
        metrics.disk_hit_latency.record(latency)
        if kick:  # virtual daemon kick #2
            engine.events_processed += 1
            engine.events_jumped += 1
            next(engine._eid)
        # ... the fault loop's MEMORY arm: install, touch, mark dirty ...
        entries = tlb._entries
        if len(entries) >= tlb.n_entries:
            del entries[next(iter(entries))]
            tlb._evictions += 1
        entries[g] = node
        vm.resident[node].touch(g)
        if wr:
            ent.dirty = True
        # ... and the per-item arm's tail: slow access + cache refill.
        self.stats.add("slow_accesses", 1)
        cache._misses += 1
        resident = cache._resident
        resident[g] = None
        while len(resident) > cache._window:
            resident.popitem(last=False)
        po += v
        psum += v
        if mb:
            if psum > 0.0:
                if not try_jump(psum, 1):
                    raise RuntimeError(
                        "batched fault: proven refill flush jump refused"
                    )
                for cat, pv in pending.items():
                    if pv and cat != "other" and cat != "tlb":
                        acct_times[cat] += pv
                        pending[cat] = 0.0
                if ptlb:
                    atl += ptlb
                    ptlb = 0.0
                if po:
                    ao += po
                    po = 0.0
                psum = 0.0
            t0 = engine._now
            if not mem_bus.try_jump_transfer(mb):
                raise RuntimeError(
                    "batched fault: proven refill bus jump refused"
                )
            ao += engine._now - t0
        self.epoch_fault_jumps += 1
        return (psum, po, ptlb, ao, atl, stolen_rem)

    def _batched_ring(
        self,
        g: int,
        ent: Any,
        wr: bool,
        v: float,
        na: int,
        psum: float,
        po: float,
        ptlb: float,
        ao: float,
        atl: float,
        stolen_rem: float,
    ) -> Optional[Tuple[float, float, float, float, float, float]]:
        """Snoop a RING page off its cache channel as one batched chain.

        The ring-snoop analogue of :meth:`_batched_fault`: claim the page
        from the drain FIFO, wait out the ring alignment, cross the local
        I/O and memory buses, install the (dirty) page — all as proven
        clock jumps with the same protocol and virtual-kick accounting.
        Returns the updated working copies or ``None`` untouched.  Extra
        refusals beyond the fault chain's: victim caching off, the page no
        longer claimable (the drain got to it first), or a swap-out
        waiting on the channel's slot (``remove`` would wake it — real
        event scheduling).
        """
        cfg = self.cfg
        if not cfg.victim_caching:
            return None
        engine = self.engine
        node = self.node
        vm = self.vm
        swap = vm.swap
        ring = swap.ring
        ch_idx = ent.ring_channel
        if ring is None or ch_idx is None:
            return None
        iface = swap.interfaces.get(swap.io_node_of(g))
        if iface is None:
            return None
        # Non-mutating claim check: the drain FIFO must still hold the
        # page, so the commit's real try_claim below cannot refuse.
        fifo = iface._fifos.get(ch_idx)
        if not fifo:
            self.epoch_fault_blocked_window += 1
            return None
        for queued in fifo:
            if queued[0] == g:
                break
        else:
            self.epoch_fault_blocked_window += 1
            return None
        pool = vm.pools[node]
        free = pool._free
        if not free:
            self.epoch_fault_blocked_pressure += 1
            return None
        lw = pool._low_watermark_event
        if (
            lw is not None
            and not lw.triggered
            and (len(free) - 1) < pool.min_free
        ):
            self.epoch_fault_blocked_pressure += 1
            return None
        se = ent._settle
        if se is not None and not se.triggered:
            self.epoch_fault_blocked_window += 1
            return None
        dw = vm._daemon_wakes[node]
        kick = dw is not None and not dw.triggered
        if kick and (pool.min_free + len(pool._waiters)) > (
            (len(free) - 1) + vm._pending_free[node]
        ):
            self.epoch_fault_blocked_pressure += 1
            return None
        channel = ring.channels[ch_idx]
        if channel._slot_waiters:
            self.epoch_fault_blocked_window += 1
            return None
        cache = self.cache
        if g in cache._resident:  # pragma: no cover - RING pages are
            return None           # shot down from every window
        page_size = cache._page_size
        mb = max(cache._cold_miss_bytes, min(page_size, na * BLOCK_BYTES))
        mb = min(mb, page_size)
        psize = cfg.page_size
        io_bus = vm.io_buses[node]
        srv = io_bus._server
        if srv.users or srv.queue:
            self.epoch_fault_blocked_window += 1
            return None
        mem_bus = self.mem_buses[node]
        srv = mem_bus._server
        if srv.users or srv.queue:
            self.epoch_fault_blocked_window += 1
            return None
        # -- ascending targets: flush, ring alignment, two bus crossings
        stolen = self._stolen
        tlb_miss = cfg.tlb_miss_pcycles
        tot = psum + tlb_miss
        if stolen_rem:
            for sv in stolen.values():
                if sv:
                    tot = tot + sv
        now = engine._now
        t = now + tot if tot > 0.0 else now
        # read_delay exactly as the channel will compute it *after* the
        # flush jump (the alignment is phase-relative to the live clock).
        phase = channel._pages[g]
        t = t + ((phase - t) % channel.round_trip + channel.insertion_time())
        t = t + (io_bus.overhead + psize / io_bus.rate)
        t = t + (mem_bus.overhead + psize / mem_bus.rate)
        t = t + v
        if mb:
            t = t + (mem_bus.overhead + mb / mem_bus.rate)
        equeue = engine._queue
        if (equeue and equeue[0][0] <= t) or t > engine._limit:
            self.epoch_fault_blocked_window += 1
            return None
        # -- commit, in kernel order (see _batched_fault)
        tlb = vm.tlbs[node]
        tlb._misses += 1
        ptlb += tlb_miss
        psum += tlb_miss
        pending = self._pending
        acct_times = self.acct.times
        try_jump = engine.try_jump
        if stolen_rem:
            for cat, sv in stolen.items():
                if sv:
                    if cat == "other":
                        po += sv
                    elif cat == "tlb":
                        ptlb += sv
                    else:
                        pending[cat] += sv
                    psum += sv
                    stolen[cat] = 0.0
            self._stolen_sum = 0.0
            stolen_rem = 0.0
        if psum > 0.0:
            if not try_jump(psum, 1):
                raise RuntimeError(
                    "batched ring snoop: proven flush jump refused"
                )
            for cat, pv in pending.items():
                if pv and cat != "other" and cat != "tlb":
                    acct_times[cat] += pv
                    pending[cat] = 0.0
            if ptlb:
                atl += ptlb
                ptlb = 0.0
            if po:
                ao += po
                po = 0.0
            psum = 0.0
        frame = free.popleft()
        pool.stall.record(0.0)
        pool._notify_low()  # proven silent
        if kick:  # virtual daemon kick #1
            engine.events_processed += 1
            engine.events_jumped += 1
            next(engine._eid)
        if not iface.try_claim(ch_idx, g):
            raise RuntimeError("batched ring snoop: proven claim refused")
        # _fault_from_ring, collapsed
        ent.to_inflight(node)
        t0 = engine._now
        if not try_jump(channel.read_delay(g), 1):
            raise RuntimeError("batched ring snoop: proven ring jump refused")
        if not io_bus.try_jump_transfer(psize):
            raise RuntimeError(
                "batched ring snoop: proven I/O bus jump refused"
            )
        if not mem_bus.try_jump_transfer(psize):
            raise RuntimeError(
                "batched ring snoop: proven memory bus jump refused"
            )
        channel.remove(g)
        # The disk copy is stale, so the page re-enters memory dirty.
        ent.to_memory(node, frame, dirty=True)
        vm.resident[node].insert(g)
        now = engine._now
        dt = now - t0
        self.acct.charge("fault", dt)
        metrics = vm.metrics
        counts = metrics.counts
        counts.add("faults")
        counts.add("ring_hits")
        metrics.ring_hit_latency.record(dt)
        metrics.fault_latency.record(dt)
        if kick:  # virtual daemon kick #2
            engine.events_processed += 1
            engine.events_jumped += 1
            next(engine._eid)
        # resolve's MEMORY arm + the per-item tail (see _batched_fault)
        entries = tlb._entries
        if len(entries) >= tlb.n_entries:
            del entries[next(iter(entries))]
            tlb._evictions += 1
        entries[g] = node
        vm.resident[node].touch(g)
        if wr:
            ent.dirty = True
        self.stats.add("slow_accesses", 1)
        cache._misses += 1
        resident = cache._resident
        resident[g] = None
        while len(resident) > cache._window:
            resident.popitem(last=False)
        po += v
        psum += v
        if mb:
            if psum > 0.0:
                if not try_jump(psum, 1):
                    raise RuntimeError(
                        "batched ring snoop: proven refill flush jump refused"
                    )
                for cat, pv in pending.items():
                    if pv and cat != "other" and cat != "tlb":
                        acct_times[cat] += pv
                        pending[cat] = 0.0
                if ptlb:
                    atl += ptlb
                    ptlb = 0.0
                if po:
                    ao += po
                    po = 0.0
                psum = 0.0
            t0 = engine._now
            if not mem_bus.try_jump_transfer(mb):
                raise RuntimeError(
                    "batched ring snoop: proven refill bus jump refused"
                )
            ao += engine._now - t0
        self.epoch_ring_jumps += 1
        return (psum, po, ptlb, ao, atl, stolen_rem)

    def _epoch_quanta(
        self,
        plan: Any,
        i: int,
        valid: int,
        miss_offs: List[int],
        tlb_miss: float,
    ) -> int:
        """Integrate pending time over a validated epoch of ``valid``
        items, performing the flush-quantum flushes *inside* the epoch
        as clock jumps.  Returns the number of items consumed.

        Each quantum's ``_pending_sum`` / ``pending["other"]`` /
        ``pending["tlb"]`` float chains are re-run as seeded cumulative
        sums (sequential adds, identical doubles), every flushed total
        is jumped with one ``try_jump(total, 1)`` — the same clock adds
        and event counts as the evented flushes — and the account drain
        performs the kernel's per-category adds per flush.  Stops early
        when a jump refuses (the epoch then ends on that quantum's
        crossing item with ``_pending_sum`` over the quantum, so the
        caller's outer loop takes the evented flush).  Only called with
        no audit tick hook and ``_stolen_sum == 0``, so internal flushes
        never fold stolen time and are never observed mid-commit.
        """
        engine = self.engine
        equeue = engine._queue
        try_jump = engine.try_jump
        busy_arr = plan.busy_think
        pending = self._pending
        acct_times = self.acct.times
        chain_seed = self._pending_sum
        po_seed = pending["other"]
        pt = pending["tlb"]
        mi = 0
        drained = False  # other categories drained at first flush yet?
        a = 0
        while True:
            rem = valid - a
            bts = busy_arr[i + a:i + valid]
            m_rel = [m - a for m in miss_offs[mi:]]
            if m_rel:
                moffs = np.asarray(m_rel, dtype=np.int64)
                seq = np.insert(bts, moffs, tlb_miss)
                cum = np.cumsum(np.concatenate(((chain_seed,), seq)))
                ar = np.arange(rem)
                end_vals = cum[
                    1 + ar + np.searchsorted(moffs, ar, side="right")
                ]
            elif chain_seed == 0.0:
                # cumsum's internal accumulator starts at 0.0, like the
                # kernel's chain after a flush.
                end_vals = np.cumsum(bts)
            else:
                end_vals = np.cumsum(
                    np.concatenate(((chain_seed,), bts))
                )[1:]
            k = int(
                np.searchsorted(end_vals, FLUSH_QUANTUM_PCYCLES, side="left")
            )
            if k >= rem:
                # Tail quantum: the run ends before the next crossing.
                n_mq = len(m_rel)
                chain_end = float(end_vals[rem - 1])
                if n_mq or po_seed != chain_seed:
                    po_end = float(
                        np.cumsum(np.concatenate(((po_seed,), bts)))[-1]
                    )
                else:
                    # No interleaved walk charges and numerically equal
                    # seeds: the chains coincide at every step.
                    po_end = chain_end
                for _ in range(n_mq):
                    pt += tlb_miss
                pending["other"] = po_end
                pending["tlb"] = pt
                self._pending_sum = chain_end
                return valid
            total = float(end_vals[k])
            n_mq = bisect_right(m_rel, k)
            if n_mq or po_seed != chain_seed:
                po_end = float(
                    np.cumsum(
                        np.concatenate(
                            ((po_seed,), busy_arr[i + a:i + a + k + 1])
                        )
                    )[-1]
                )
            else:
                po_end = total
            for _ in range(n_mq):
                pt += tlb_miss
            mi += n_mq
            if (
                equeue and equeue[0][0] <= engine._now + total
            ) or not try_jump(total, 1):
                # Contended flush: end the epoch on this quantum's
                # crossing item, leaving the per-category chains exactly
                # where the kernel would have them, and let the caller's
                # outer loop flush through the event queue.
                pending["other"] = po_end
                pending["tlb"] = pt
                self._pending_sum = total
                return a + k + 1
            # Jumped flush: drain with the kernel's adds.
            if not drained:
                for cat, pv in pending.items():
                    if pv and cat != "other" and cat != "tlb":
                        acct_times[cat] += pv
                        pending[cat] = 0.0
                drained = True
            if po_end:
                acct_times["other"] += po_end
            if pt:
                acct_times["tlb"] += pt
            po_seed = 0.0
            pt = 0.0
            chain_seed = 0.0
            a += k + 1
            if a >= valid:
                # The crossing fell on the last item: the epoch ends
                # freshly flushed.
                pending["other"] = 0.0
                pending["tlb"] = 0.0
                self._pending_sum = 0.0
                return valid

    def _visit(
        self, page: int, n_reads: int, n_writes: int, think: float
    ) -> Generator[Event, Any, None]:
        self.stats.add("visits")
        is_write = n_writes > 0
        home = self.vm.fast_access(self.node, page, is_write)
        if home is None:
            # Page fault (or wait on a page in motion): slow path.
            yield from self._flush()
            home = yield from self.vm.resolve(self.node, page, is_write, self.acct)
            self.stats.add("slow_accesses")
        busy, miss_bytes = self.cache.visit(page, n_reads + n_writes)
        self.add_pending("other", busy + think)
        if miss_bytes:
            yield from self._flush()
            t0 = self.engine.now
            if home == self.node:
                yield from self.mem_buses[self.node].transfer(miss_bytes)
            else:
                # Remote fetch: home memory bus, then the mesh back to us.
                yield from self.mem_buses[home].transfer(miss_bytes)
                yield from self.network.transfer(home, self.node, miss_bytes)
                yield self.engine.timeout(self.cfg.remote_latency_pcycles)
                self.stats.add("remote_fetches")
            self.acct.charge("other", self.engine.now - t0)
        if self._pending_total() >= FLUSH_QUANTUM_PCYCLES:
            yield from self._flush()
