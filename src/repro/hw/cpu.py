"""The processor model: executes an application reference stream.

Each CPU consumes a per-processor stream of items emitted by a workload
driver:

* ``("visit", page, n_reads, n_writes, think_cycles)`` — the processor
  performs ``n_reads + n_writes`` accesses to ``page`` plus
  ``think_cycles`` of pure computation;
* ``("barrier", key)`` — synchronize with all other processors.

Pure-compute and bookkeeping time (busy cycles, TLB walk charges,
shootdown interrupts) is accumulated *lazily* in a pending-time buffer
and materialized as a single timeout whenever the processor is about to
interact with a shared resource (bus, network, page fault, barrier) or
the buffer exceeds ``FLUSH_QUANTUM_PCYCLES``.  This keeps hot loops at
zero events per visit while preserving the ordering of all contended
interactions, and guarantees that the per-category time account sums to
the processor's execution time.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.config import SimConfig
from repro.hw.accounting import CATEGORIES, TimeAccount
from repro.hw.cache import CacheModel
from repro.hw.network import MeshNetwork
from repro.osim.sync import BarrierRegistry
from repro.sim import BandwidthPipe, Counter, Engine
from repro.sim.events import Event

#: pending time is flushed at least this often (pcycles)
FLUSH_QUANTUM_PCYCLES = 20_000.0

#: stream item types
Item = Tuple[Any, ...]


class Cpu:
    """One processor: runs a reference stream against the VM system."""

    def __init__(
        self,
        engine: Engine,
        cfg: SimConfig,
        node: int,
        cache: CacheModel,
        vm: Any,
        network: MeshNetwork,
        mem_buses: List[BandwidthPipe],
        barriers: BarrierRegistry,
    ) -> None:
        self.engine = engine
        self.cfg = cfg
        self.node = node
        self.cache = cache
        self.vm = vm
        self.network = network
        self.mem_buses = mem_buses
        self.barriers = barriers
        self.acct = TimeAccount()
        self.stats = Counter()
        self._pending: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self._stolen: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- lazy time ---------------------------------------------------------
    def add_pending(self, category: str, cycles: float) -> None:
        """Queue ``cycles`` of ``category`` time to materialize later."""
        self._pending[category] += cycles

    def steal(self, category: str, cycles: float) -> None:
        """Another component (shootdown) consumes this CPU's cycles."""
        self._stolen[category] += cycles

    def _pending_total(self) -> float:
        return sum(self._pending.values())

    def _flush(self) -> Generator[Event, Any, None]:
        """Materialize pending time as one timeout and charge categories."""
        for cat, v in self._stolen.items():
            if v:
                self._pending[cat] += v
                self._stolen[cat] = 0.0
        total = self._pending_total()
        if total > 0.0:
            yield self.engine.timeout(total)
            for cat in CATEGORIES:
                v = self._pending[cat]
                if v:
                    self.acct.charge(cat, v)
                    self._pending[cat] = 0.0

    # -- execution ---------------------------------------------------------
    def run(self, stream: Iterable[Item]) -> Generator[Event, Any, None]:
        """The CPU process: execute the whole stream, then finish."""
        self.started_at = self.engine.now
        for item in stream:
            kind = item[0]
            if kind == "visit":
                _, page, n_reads, n_writes, think = item
                yield from self._visit(page, n_reads, n_writes, think)
            elif kind == "barrier":
                yield from self._flush()
                t0 = self.engine.now
                yield self.barriers.get(item[1]).wait()
                self.acct.charge("other", self.engine.now - t0)
                self.stats.add("barriers")
            else:
                raise ValueError(f"unknown stream item {item!r}")
        yield from self._flush()
        self.finished_at = self.engine.now

    def _visit(
        self, page: int, n_reads: int, n_writes: int, think: float
    ) -> Generator[Event, Any, None]:
        self.stats.add("visits")
        is_write = n_writes > 0
        home = self.vm.fast_access(self.node, page, is_write)
        if home is None:
            # Page fault (or wait on a page in motion): slow path.
            yield from self._flush()
            home = yield from self.vm.resolve(self.node, page, is_write, self.acct)
            self.stats.add("slow_accesses")
        busy, miss_bytes = self.cache.visit(page, n_reads + n_writes)
        self.add_pending("other", busy + think)
        if miss_bytes:
            yield from self._flush()
            t0 = self.engine.now
            if home == self.node:
                yield from self.mem_buses[self.node].transfer(miss_bytes)
            else:
                # Remote fetch: home memory bus, then the mesh back to us.
                yield from self.mem_buses[home].transfer(miss_bytes)
                yield from self.network.transfer(home, self.node, miss_bytes)
                yield self.engine.timeout(self.cfg.remote_latency_pcycles)
                self.stats.add("remote_fetches")
            self.acct.charge("other", self.engine.now - t0)
        if self._pending_total() >= FLUSH_QUANTUM_PCYCLES:
            yield from self._flush()
