"""The processor model: executes an application reference stream.

Each CPU consumes a per-processor stream of items emitted by a workload
driver:

* ``("visit", page, n_reads, n_writes, think_cycles)`` — the processor
  performs ``n_reads + n_writes`` accesses to ``page`` plus
  ``think_cycles`` of pure computation;
* ``("barrier", key)`` — synchronize with all other processors.

Pure-compute and bookkeeping time (busy cycles, TLB walk charges,
shootdown interrupts) is accumulated *lazily* in a pending-time buffer
and materialized as a single timeout whenever the processor is about to
interact with a shared resource (bus, network, page fault, barrier) or
the buffer exceeds ``FLUSH_QUANTUM_PCYCLES``.  This keeps hot loops at
zero events per visit while preserving the ordering of all contended
interactions, and guarantees that the per-category time account sums to
the processor's execution time.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.config import SimConfig
from repro.hw.accounting import CATEGORIES, TimeAccount
from repro.hw.cache import CacheModel
from repro.hw.network import MeshNetwork
from repro.osim.sync import BarrierRegistry
from repro.sim import BandwidthPipe, Counter, Engine
from repro.sim.events import Event, Timeout

#: pending time is flushed at least this often (pcycles)
FLUSH_QUANTUM_PCYCLES = 20_000.0

#: stream item types
Item = Tuple[Any, ...]


class Cpu:
    """One processor: runs a reference stream against the VM system."""

    def __init__(
        self,
        engine: Engine,
        cfg: SimConfig,
        node: int,
        cache: CacheModel,
        vm: Any,
        network: MeshNetwork,
        mem_buses: List[BandwidthPipe],
        barriers: BarrierRegistry,
    ) -> None:
        self.engine = engine
        self.cfg = cfg
        self.node = node
        self.cache = cache
        self.vm = vm
        self.network = network
        self.mem_buses = mem_buses
        self.barriers = barriers
        self.acct = TimeAccount()
        self.stats = Counter()
        self._pending: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self._pending_sum = 0.0  #: running total of self._pending
        self._stolen: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self._stolen_sum = 0.0  #: running total of self._stolen
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- lazy time ---------------------------------------------------------
    def add_pending(self, category: str, cycles: float) -> None:
        """Queue ``cycles`` of ``category`` time to materialize later."""
        self._pending[category] += cycles
        self._pending_sum += cycles

    def steal(self, category: str, cycles: float) -> None:
        """Another component (shootdown) consumes this CPU's cycles."""
        self._stolen[category] += cycles
        self._stolen_sum += cycles

    def _pending_total(self) -> float:
        # Maintained incrementally: summing the dict per visit was the
        # hottest per-item cost.  The sum resets to exactly 0.0 at every
        # flush, so float drift cannot accumulate across quanta.
        return self._pending_sum

    def _flush(self) -> Generator[Event, Any, None]:
        """Materialize pending time as one timeout and charge categories."""
        if self._stolen_sum:
            # Only walk the stolen dict when a shootdown actually charged
            # us since the last flush — this runs once per flush.
            for cat, v in self._stolen.items():
                if v:
                    self._pending[cat] += v
                    self._pending_sum += v
                    self._stolen[cat] = 0.0
            self._stolen_sum = 0.0
        total = self._pending_sum
        if total > 0.0:
            yield Timeout(self.engine, total)
            for cat in CATEGORIES:
                v = self._pending[cat]
                if v:
                    self.acct.charge(cat, v)
                    self._pending[cat] = 0.0
            self._pending_sum = 0.0

    # -- execution ---------------------------------------------------------
    def run(self, stream: Iterable[Item]) -> Generator[Event, Any, None]:
        """The CPU process: execute the whole stream, then finish."""
        self.started_at = self.engine.now
        for item in stream:
            kind = item[0]
            if kind == "visit":
                _, page, n_reads, n_writes, think = item
                yield from self._visit(page, n_reads, n_writes, think)
            elif kind == "barrier":
                yield from self._flush()
                t0 = self.engine.now
                yield self.barriers.get(item[1]).wait()
                self.acct.charge("other", self.engine.now - t0)
                self.stats.add("barriers")
            else:
                raise ValueError(f"unknown stream item {item!r}")
        yield from self._flush()
        self.finished_at = self.engine.now

    def run_compiled(
        self, trace: Any, proc: int, page_base: int
    ) -> Generator[Event, Any, None]:
        """Trace-fed fast path: execute a compiled trace's arrays directly.

        Semantically identical to :meth:`run` over the decoded item
        stream — same yields in the same order, same charges, same final
        counters — but with the per-item work inlined: no driver
        generator to resume, no ``_visit`` sub-generator per item, no
        per-item counter updates (visit/barrier stats are accumulated in
        locals and added once at the end; nothing observes them mid-run).
        The ``self._pending`` dict is still updated item by item, because
        the audit invariants inspect it between events.
        """
        from repro.core.trace import KIND_VISIT

        self.started_at = self.engine.now
        # Cached bulk decode to plain Python scalars (see
        # CompiledTrace.columns): bit-identical arithmetic, paid once per
        # trace rather than once per run.
        kinds, page_col, read_col, write_col, think_col = trace.columns(proc)
        barrier_keys = trace.barrier_keys
        engine = self.engine
        vm = self.vm
        fast_access = vm.fast_access
        resolve = vm.resolve
        cache_visit = self.cache.visit
        barrier_get = self.barriers.get
        acct = self.acct
        acct_charge = acct.charge
        acct_times = acct.times
        pending = self._pending
        stolen = self._stolen
        mem_buses = self.mem_buses
        network = self.network
        net_route_cache = network._route_cache
        net_link_rate = network._link_rate
        node = self.node
        remote_latency = self.cfg.remote_latency_pcycles
        n_visits = n_slow = n_remote = n_barriers = 0
        # The ``_flush()`` blocks below are :meth:`_flush`, inlined: a
        # flush precedes every contended interaction, so delegating to the
        # sub-generator (one allocation + double dispatch per flush) was a
        # measurable share of the per-item cost.  The logic and float
        # arithmetic are identical; ``self._pending_sum`` and the dicts
        # stay current at every yield for the audit invariants.
        #
        # zip instead of indexing: one tuple unpack per item replaces five
        # list subscripts (for barriers, ``pg`` carries the key index).
        for kind, pg, n_reads, n_writes, think in zip(
            kinds, page_col, read_col, write_col, think_col
        ):
            if kind == KIND_VISIT:
                n_visits += 1
                page = page_base + pg
                is_write = n_writes > 0
                home = fast_access(node, page, is_write)
                if home is None:
                    # Page fault (or wait on a page in motion): slow path.
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
                    home = yield from resolve(node, page, is_write, acct)
                    n_slow += 1
                busy, miss_bytes = cache_visit(page, n_reads + n_writes)
                v = busy + think
                pending["other"] += v
                self._pending_sum += v
                if miss_bytes:
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
                    t0 = engine._now
                    # BandwidthPipe.transfer, inlined: the same request /
                    # timeout / release sequence without allocating a
                    # delegate generator per miss (identical events).
                    bus = mem_buses[home]
                    req = bus._server.request(0)
                    yield req
                    try:
                        yield Timeout(
                            engine, bus.overhead + miss_bytes / bus.rate
                        )
                        bus.bytes_transferred += miss_bytes
                    finally:
                        bus._server.release(req)
                    if home != node:
                        # MeshNetwork.transfer, inlined likewise (home !=
                        # node, so the route always has links to hold).
                        t0n = engine._now
                        ent = net_route_cache.get((home, node))
                        if ent is None:
                            ent = network._route_entry(home, node)
                        links, fixed, _h = ent
                        requests = []
                        try:
                            for res in links:
                                nreq = res.request(0)
                                requests.append(nreq)
                                yield nreq
                            yield Timeout(
                                engine, fixed + miss_bytes / net_link_rate
                            )
                        finally:
                            for res, nreq in zip(links, requests):
                                res.release(nreq)
                        network.bytes_sent += miss_bytes
                        network.latency.record(engine._now - t0n)
                        yield Timeout(engine, remote_latency)
                        n_remote += 1
                    acct_charge("other", engine._now - t0)
                if self._pending_sum >= FLUSH_QUANTUM_PCYCLES:
                    if self._stolen_sum:  # _flush(), inlined
                        for cat, sv in stolen.items():
                            if sv:
                                pending[cat] += sv
                                self._pending_sum += sv
                                stolen[cat] = 0.0
                        self._stolen_sum = 0.0
                    total = self._pending_sum
                    if total > 0.0:
                        yield Timeout(engine, total)
                        for cat, pv in pending.items():
                            if pv:
                                acct_times[cat] += pv
                                pending[cat] = 0.0
                        self._pending_sum = 0.0
            else:
                if self._stolen_sum:  # _flush(), inlined
                    for cat, sv in stolen.items():
                        if sv:
                            pending[cat] += sv
                            self._pending_sum += sv
                            stolen[cat] = 0.0
                    self._stolen_sum = 0.0
                total = self._pending_sum
                if total > 0.0:
                    yield Timeout(engine, total)
                    for cat, pv in pending.items():
                        if pv:
                            acct_times[cat] += pv
                            pending[cat] = 0.0
                    self._pending_sum = 0.0
                t0 = engine._now
                yield barrier_get(barrier_keys[pg]).wait()
                acct_charge("other", engine._now - t0)
                n_barriers += 1
        yield from self._flush()
        self.finished_at = engine.now
        stats = self.stats
        if n_visits:
            stats.add("visits", n_visits)
        if n_slow:
            stats.add("slow_accesses", n_slow)
        if n_remote:
            stats.add("remote_fetches", n_remote)
        if n_barriers:
            stats.add("barriers", n_barriers)

    def _visit(
        self, page: int, n_reads: int, n_writes: int, think: float
    ) -> Generator[Event, Any, None]:
        self.stats.add("visits")
        is_write = n_writes > 0
        home = self.vm.fast_access(self.node, page, is_write)
        if home is None:
            # Page fault (or wait on a page in motion): slow path.
            yield from self._flush()
            home = yield from self.vm.resolve(self.node, page, is_write, self.acct)
            self.stats.add("slow_accesses")
        busy, miss_bytes = self.cache.visit(page, n_reads + n_writes)
        self.add_pending("other", busy + think)
        if miss_bytes:
            yield from self._flush()
            t0 = self.engine.now
            if home == self.node:
                yield from self.mem_buses[self.node].transfer(miss_bytes)
            else:
                # Remote fetch: home memory bus, then the mesh back to us.
                yield from self.mem_buses[home].transfer(miss_bytes)
                yield from self.network.transfer(home, self.node, miss_bytes)
                yield self.engine.timeout(self.cfg.remote_latency_pcycles)
                self.stats.add("remote_fetches")
            self.acct.charge("other", self.engine.now - t0)
        if self._pending_total() >= FLUSH_QUANTUM_PCYCLES:
            yield from self._flush()
