"""Per-processor execution-time accounting.

The paper's Figures 3 and 4 split execution time into five components
(from the top of each bar):

* ``nofree``  — stall for lack of free page frames ("NoFree")
* ``transit`` — waiting for another node to finish bringing a page in
* ``fault``   — page-fault service overhead ("Fault")
* ``tlb``     — TLB miss + TLB shootdown overhead
* ``other``   — everything not related to VM management: processor busy,
  cache misses, and synchronization ("Others")

Every suspension point in the CPU/VM code charges elapsed simulated time
to exactly one category via a :class:`TimeAccount`, so the categories sum
to each processor's total execution time by construction (asserted in
tests).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Category keys, in the paper's bar order (top to bottom).
CATEGORIES: Tuple[str, ...] = ("nofree", "transit", "fault", "tlb", "other")


class TimeAccount:
    """Accumulates per-category simulated time for one processor."""

    __slots__ = ("times",)

    def __init__(self) -> None:
        self.times: Dict[str, float] = {c: 0.0 for c in CATEGORIES}

    def charge(self, category: str, dt: float) -> None:
        """Add ``dt`` pcycles to ``category``."""
        if dt < 0:
            raise ValueError(f"negative charge: {dt}")
        self.times[category] += dt  # KeyError on bad category is intentional

    def total(self) -> float:
        """Sum over all categories."""
        return sum(self.times.values())

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of the per-category times."""
        return dict(self.times)

    def merge(self, other: "TimeAccount") -> None:
        """Accumulate another account into this one (for machine totals)."""
        for cat, dt in other.times.items():
            self.times[cat] += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}={v:.3g}" for c, v in self.times.items())
        return f"TimeAccount({parts})"
