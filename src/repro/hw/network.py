"""Wormhole-routed 2D mesh interconnect with per-link contention.

Nodes are laid out row-major on a ``rows x cols`` mesh and messages use
dimension-order (XY) routing: first along the row, then along the
column.  A message acquires each unidirectional link on its path in path
order, holds all of them for the serialization time (virtual
cut-through approximation of wormhole flit pipelining), then releases
them.  Because XY routing's channel-dependency graph is acyclic, the
ordered acquisition cannot deadlock.

The paper routes *all* traffic of the standard machine through this mesh
(page reads, swap-outs, control messages); the NWCache machine moves
swap-outs and ring-hit reads off of it, which is the "contention" benefit
quantified in Table 8.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.config import SimConfig
from repro.sim import Engine, Resource, Tally
from repro.sim.events import Event, Timeout

Link = Tuple[int, int]  #: directed link (from_node, to_node)


class MeshNetwork:
    """The multiprocessor's wormhole mesh.

    Parameters
    ----------
    engine, cfg:
        Simulation engine and machine configuration (uses ``mesh_dims``,
        ``link_rate``, ``router_delay_pcycles``,
        ``message_overhead_pcycles``).
    """

    def __init__(self, engine: Engine, cfg: SimConfig) -> None:
        self.engine = engine
        self.cfg = cfg
        self.rows, self.cols = cfg.mesh_dims
        self._links: Dict[Link, Resource] = {}
        for node in range(cfg.n_nodes):
            r, c = divmod(node, self.cols)
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < self.rows and 0 <= nc < self.cols:
                    nbr = nr * self.cols + nc
                    self._links[(node, nbr)] = Resource(
                        engine, capacity=1, name=f"link{node}->{nbr}"
                    )
        #: total bytes injected (traffic accounting, Table 8 discussion)
        self.bytes_sent = 0
        #: observed end-to-end message latency
        self.latency = Tally()
        # The mesh is static, so a (src, dst) pair's link sequence and the
        # fixed part of its latency never change.  transfer() is one of the
        # hottest call sites in a run; memoize per-pair so the per-message
        # work is a dict lookup instead of recomputing XY routes.  The
        # cached values are derived with route()/base_latency()'s own
        # arithmetic, so latencies stay bit-identical.
        self._link_rate = cfg.link_rate
        self._route_cache: Dict[Tuple[int, int], Tuple[List[Resource], float, int]] = {}

    def _route_entry(self, src: int, dst: int) -> Tuple[List[Resource], float, int]:
        """(link resources, fixed latency, hop count) for ``src``→``dst``."""
        path = self.route(src, dst)
        h = len(path)
        fixed = (
            self.cfg.message_overhead_pcycles
            + h * self.cfg.router_delay_pcycles
        )
        entry = ([self._links[link] for link in path], fixed, h)
        self._route_cache[(src, dst)] = entry
        return entry

    # -- routing ----------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        """(row, col) of ``node``."""
        if not (0 <= node < self.cfg.n_nodes):
            raise ValueError(f"node {node} out of range")
        return divmod(node, self.cols)

    def route(self, src: int, dst: int) -> List[Link]:
        """The XY-routed link sequence from ``src`` to ``dst``."""
        (r0, c0), (r1, c1) = self.coords(src), self.coords(dst)
        path: List[Link] = []
        cur = src
        step = 1 if c1 > c0 else -1
        for c in range(c0 + step, c1 + step, step) if c1 != c0 else ():
            nxt = r0 * self.cols + c
            path.append((cur, nxt))
            cur = nxt
        step = 1 if r1 > r0 else -1
        for r in range(r0 + step, r1 + step, step) if r1 != r0 else ():
            nxt = r * self.cols + c1
            path.append((cur, nxt))
            cur = nxt
        return path

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        (r0, c0), (r1, c1) = self.coords(src), self.coords(dst)
        return abs(r0 - r1) + abs(c0 - c1)

    # -- latency model ------------------------------------------------------
    def base_latency(self, src: int, dst: int, nbytes: int) -> float:
        """End-to-end latency with zero contention, in pcycles."""
        h = self.hops(src, dst)
        serialization = nbytes / self.cfg.link_rate if h else 0.0
        return (
            self.cfg.message_overhead_pcycles
            + h * self.cfg.router_delay_pcycles
            + serialization
        )

    def transfer(
        self, src: int, dst: int, nbytes: int, priority: int = 0
    ) -> Generator[Event, Any, None]:
        """Send ``nbytes`` from ``src`` to ``dst`` (generator; yields until
        delivered).  Contention: holds every path link for the message's
        occupancy."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        engine = self.engine
        t0 = engine._now
        entry = self._route_cache.get((src, dst))
        if entry is None:
            entry = self._route_entry(src, dst)
        links, fixed, h = entry
        if not links:
            # src == dst: no links to hold, just the message overhead
            # (serialization is zero at zero hops) — skip the request
            # bookkeeping entirely.
            yield Timeout(engine, fixed)
            self.bytes_sent += nbytes
            self.latency.record(engine._now - t0)
            return
        requests = []
        try:
            for res in links:
                req = res.request(priority)
                requests.append(req)
                yield req
            # == base_latency(src, dst, nbytes), from the memoized parts.
            yield Timeout(
                engine, fixed + nbytes / self._link_rate if h else fixed
            )
        finally:
            for res, req in zip(links, requests):
                res.release(req)
        self.bytes_sent += nbytes
        self.latency.record(engine._now - t0)

    def try_jump_transfer(self, src: int, dst: int, nbytes: float) -> bool:
        """Complete an uncontended message as a clock jump, if possible.

        Exactly equivalent to :meth:`transfer` when every link on the XY
        route is idle and the engine can leap over the occupancy window:
        the per-link grants and the serialization timeout collapse into
        one ``Engine.try_jump(..., hops + 1)``, each link's busy integral
        advances by the same window the release path would have added,
        and the latency tally records the identical ``now - t0``.
        Returns False (no state touched) when any route link is held or
        queued, or another event is due inside the window.
        """
        entry = self._route_cache.get((src, dst))
        if entry is None:
            entry = self._route_entry(src, dst)
        links, fixed, h = entry
        for res in links:
            if res.users or res.queue:
                return False
        engine = self.engine
        t0 = engine._now
        delay = fixed + nbytes / self._link_rate if h else fixed
        if not engine.try_jump(delay, len(links) + 1):
            return False
        now = engine._now
        dt = now - t0
        for res in links:
            res._busy_integral += dt
            res._last_change = now
        self.bytes_sent += nbytes
        self.latency.record(dt)
        return True

    # -- reporting --------------------------------------------------------
    def max_link_utilization(self, total_time: float) -> float:
        """Utilization of the hottest link (contention indicator)."""
        if not self._links:
            return 0.0
        return max(l.utilization(total_time) for l in self._links.values())
