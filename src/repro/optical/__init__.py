"""The NWCache: optical ring network / write cache hybrid.

The ring's WDM *cache channels* (one per node) carry and store pages
swapped out by their owner node — optical delay-line storage.  The
:class:`~repro.optical.ring.OpticalRing` models channel capacity and the
deterministic "wait for the page to come around" read latency; the
:class:`~repro.optical.interface.NWCacheInterface` models the per-node
interface hardware: the per-channel FIFOs at I/O-enabled nodes, the
most-loaded-channel drain into the disk controller cache, victim-read
claims, and the ACK path back to the swapping node.
"""

from repro.optical.interface import NWCacheInterface
from repro.optical.ring import CacheChannel, OpticalRing

__all__ = ["CacheChannel", "NWCacheInterface", "OpticalRing"]
