"""Invariants over the optical ring and the NWC interfaces.

The delay-line physics and the drain protocol of PAPER.md Sections 2/3.2
reduce to conservation laws:

* a channel never stores (or reserves) more pages than its delay line
  holds, and every stored page has a legal circulation phase;
* a swapped-out page circulates on exactly one channel until it is
  drained (ACK) or reclaimed (victim read) — never lost, never duplicated;
* the per-channel swap-out FIFOs at the I/O interfaces only reference
  pages actually on the ring, reference each at most once machine-wide,
  and are consumed strictly in swap-out (FIFO) order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.optical.ring import OpticalRing
from repro.osim.pagetable import PageState, PageTable
from repro.sim.audit import Invariant


class ChannelOccupancyInvariant(Invariant):
    """Occupancy (stored + reserved slots) never exceeds channel capacity."""

    name = "ring-occupancy"

    def __init__(self, ring: OpticalRing) -> None:
        self.ring = ring

    def check(self, now: float) -> None:
        for ch in self.ring.channels:
            if ch._reserved < 0:
                self.fail(
                    f"channel {ch.index}: negative reservations "
                    f"{ch._reserved}",
                    now,
                )
            if ch.n_stored > ch.capacity:
                self.fail(
                    f"channel {ch.index}: {ch.n_stored} pages stored, "
                    f"capacity {ch.capacity}",
                    now,
                )
            if ch.n_stored + ch._reserved > ch.capacity:
                self.fail(
                    f"channel {ch.index}: {ch.n_stored} stored + "
                    f"{ch._reserved} reserved exceeds capacity {ch.capacity}",
                    now,
                )
            if ch._slot_waiters and ch.has_room():
                self.fail(
                    f"channel {ch.index}: swap-outs waiting while slots "
                    "are free",
                    now,
                )
            rt = ch.round_trip
            for page, phase in ch._pages.items():
                if not (0.0 <= phase < rt):
                    self.fail(
                        f"channel {ch.index}: page {page} has phase {phase} "
                        f"outside [0, {rt})",
                        now,
                    )


class ChannelFailureInvariant(Invariant):
    """Channel failure state only degrades, and voids its waiters.

    Stateful: a failed channel never heals, a drop window's end never
    moves backwards, and no swap-out is ever left queued on a channel
    that cannot accept it (failures and drops wake their waiters with
    the ``channel-failed`` marker immediately).
    """

    name = "channel-failures"

    def __init__(self, ring: OpticalRing) -> None:
        self.ring = ring
        self._last: Dict[int, Tuple[bool, float]] = {
            ch.index: (ch.failed, ch._down_until) for ch in ring.channels
        }

    def check(self, now: float) -> None:
        for ch in self.ring.channels:
            last_failed, last_down = self._last[ch.index]
            if last_failed and not ch.failed:
                self.fail(f"channel {ch.index}: failure healed", now)
            if ch._down_until < last_down:
                self.fail(
                    f"channel {ch.index}: drop window shrank "
                    f"{last_down} -> {ch._down_until}",
                    now,
                )
            self._last[ch.index] = (ch.failed, ch._down_until)
            if not ch.available() and ch._slot_waiters:
                self.fail(
                    f"channel {ch.index}: {len(ch._slot_waiters)} swap-outs "
                    "queued on an unavailable channel",
                    now,
                )


class RingConservationInvariant(Invariant):
    """No lost or duplicated pages between the ring and the page table.

    Every stored page appears on exactly one channel and its page-table
    entry points back at that channel (state RING, or INFLIGHT while a
    victim read is streaming it off); conversely every RING entry's page
    is actually circulating on its recorded channel.
    """

    name = "ring-conservation"

    def __init__(self, ring: OpticalRing, table: PageTable) -> None:
        self.ring = ring
        self.table = table

    def check(self, now: float) -> None:
        stored: Dict[int, int] = {}  # page -> channel index
        for ch in self.ring.channels:
            for page in ch.pages():
                if page in stored:
                    self.fail(
                        f"page {page} duplicated on channels {stored[page]} "
                        f"and {ch.index}",
                        now,
                    )
                stored[page] = ch.index
        for page, ch_index in stored.items():
            if page not in self.table:
                self.fail(f"channel {ch_index} stores unknown page {page}", now)
                continue
            entry = self.table[page]
            if entry.state not in (PageState.RING, PageState.INFLIGHT):
                self.fail(
                    f"page {page} circulates on channel {ch_index} but is "
                    f"{entry.state.value} in the page table",
                    now,
                )
            if entry.ring_channel != ch_index:
                self.fail(
                    f"page {page} is on channel {ch_index} but the entry "
                    f"records channel {entry.ring_channel}",
                    now,
                )
        for entry in self.table.entries():
            if entry.state is PageState.RING and entry.page not in stored:
                self.fail(
                    f"page {entry.page} has the Ring bit set but is on no "
                    "channel (lost page)",
                    now,
                )


class FifoConsistencyInvariant(Invariant):
    """Interface swap-out FIFOs reference real ring pages, exactly once.

    ``io_node_of`` maps a page to the node hosting its disk, so the
    invariant also catches mis-routed control messages.
    """

    name = "fifo-consistency"

    def __init__(
        self,
        interfaces: Dict[int, Any],
        ring: OpticalRing,
        table: PageTable,
        io_node_of: Callable[[int], int],
    ) -> None:
        self.interfaces = interfaces
        self.ring = ring
        self.table = table
        self.io_node_of = io_node_of

    def check(self, now: float) -> None:
        seen: Dict[int, Tuple[int, int]] = {}  # page -> (iface node, channel)
        for node, iface in self.interfaces.items():
            for ch_index, fifo in iface._fifos.items():
                for page, swapper, _seq in fifo:
                    if page in seen:
                        self.fail(
                            f"page {page} queued twice: at node "
                            f"{seen[page][0]} channel {seen[page][1]} and at "
                            f"node {node} channel {ch_index}",
                            now,
                        )
                    seen[page] = (node, ch_index)
                    if not self.ring.channels[ch_index].contains(page):
                        self.fail(
                            f"node {node} queues page {page} for channel "
                            f"{ch_index} but the page is not circulating "
                            "there",
                            now,
                        )
                    if page not in self.table:
                        self.fail(f"queued page {page} is unregistered", now)
                        continue
                    entry = self.table[page]
                    if entry.state is not PageState.RING:
                        self.fail(
                            f"queued page {page} is {entry.state.value}, "
                            "not RING",
                            now,
                        )
                    if entry.last_swapper != swapper:
                        self.fail(
                            f"queued page {page}: FIFO says swapper "
                            f"{swapper}, entry says {entry.last_swapper}",
                            now,
                        )
                    if self.io_node_of(page) != node:
                        self.fail(
                            f"page {page} queued at node {node} but its "
                            f"disk is hosted by node {self.io_node_of(page)}",
                            now,
                        )


class FifoOrderInvariant(Invariant):
    """Swap-out FIFOs are consumed in order (FIFO drain discipline).

    Every enqueue stamps the entry with the interface's monotonically
    increasing sequence counter, and the protocol only ever appends on
    the right (new notifications), pops on the left (drain), or deletes
    from the middle (victim-read claims) — none of which can break the
    ordering.  So at any instant the stamps in each FIFO must be
    strictly increasing and below the interface's counter; anything
    else means entries were reordered or fabricated.  (Matching entries
    by ``(page, swapper)`` value instead would be unsound: a victim-read
    claim followed by a re-swap-out legally re-enqueues the same pair at
    the tail.)
    """

    name = "fifo-order"

    def __init__(self, interfaces: Dict[int, Any]) -> None:
        self.interfaces = interfaces

    def check(self, now: float) -> None:
        for node, iface in self.interfaces.items():
            for ch_index, fifo in iface._fifos.items():
                last = -1
                for _page, _swapper, seq in fifo:
                    if seq <= last:
                        self.fail(
                            f"node {node} channel {ch_index}: surviving "
                            f"swap-outs reordered (stamp {seq} after {last})",
                            now,
                        )
                    if seq >= iface._fifo_seq:
                        self.fail(
                            f"node {node} channel {ch_index}: entry stamp "
                            f"{seq} was never issued (counter at "
                            f"{iface._fifo_seq})",
                            now,
                        )
                    last = seq
