"""The per-node NWCache interface (the "NWC" box of Figure 1).

Every node's I/O bus carries an NWCache interface; the interfaces at
I/O-enabled nodes additionally front their disk controller and run the
*drain*: per Section 3.2, each interface keeps one FIFO per cache
channel recording the swap-outs destined for its disk, and whenever the
disk controller has room it snoops the **most heavily loaded** channel,
copying pages **in swap-out order** until that channel's FIFO is
exhausted (which is what batches consecutive swap-outs into combinable
disk writes), then ACKs each page back to the node that swapped it out.

A victim read (page fault that finds the Ring bit set) *claims* the page
first — removing it from the responsible interface's FIFO so it will not
also be written to disk — mirroring the paper's cancellation message.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, Optional, Tuple

from repro.config import SimConfig
from repro.disk.controller import DiskController
from repro.optical.ring import OpticalRing
from repro.sim import Counter, Engine
from repro.sim.events import Event

#: drain channel-selection policies (ablation: the paper uses most-loaded)
DRAIN_MOST_LOADED = "most-loaded"
DRAIN_ROUND_ROBIN = "round-robin"

#: ``ack(page, swapper)`` — installed by the VM layer; frees the ring
#: slot, clears the Ring bit, and settles the page-table entry.
AckCallback = Callable[[int, int], None]


class NWCacheInterface:
    """NWC interface of one node."""

    def __init__(
        self,
        engine: Engine,
        cfg: SimConfig,
        node: int,
        ring: OpticalRing,
        controller: Optional[DiskController] = None,
        drain_policy: str = DRAIN_MOST_LOADED,
    ) -> None:
        if drain_policy not in (DRAIN_MOST_LOADED, DRAIN_ROUND_ROBIN):
            raise ValueError(f"unknown drain policy {drain_policy!r}")
        self.engine = engine
        self.cfg = cfg
        self.node = node
        self.ring = ring
        self.controller = controller
        self.drain_policy = drain_policy
        self.stats = Counter()
        #: set by the VM layer before the simulation starts
        self.ack_callback: Optional[AckCallback] = None
        self._fifos: Dict[int, Deque[Tuple[int, int, int]]] = {}
        self._fifo_seq = 0  # enqueue order stamp; see notify_swapout
        self._wake: Optional[Event] = None
        self._rr_next = 0
        if controller is not None:
            controller.add_room_listener(self._kick)
            engine.process(self._drain())

    # ------------------------------------------------------------- inbound
    def notify_swapout(self, channel: int, page: int, swapper: int) -> None:
        """Record a swap-out bound for this node's disk (control message
        carrying the swapping-node and page numbers, Section 3.2)."""
        if self.controller is None:
            raise RuntimeError(f"node {self.node} has no disk; bad routing")
        # The sequence stamp distinguishes a re-swapout of a claimed page
        # from the original queue entry, so FIFO discipline stays
        # checkable even though (page, swapper) pairs can recur.
        self._fifos.setdefault(channel, deque()).append(
            (page, swapper, self._fifo_seq)
        )
        self._fifo_seq += 1
        self.stats.add("notifications")
        self._kick()

    def try_claim(self, channel: int, page: int) -> bool:
        """Victim-read claim: remove ``page`` from the FIFO if still queued.

        Returns False when the drain already popped it (the page is on its
        way to — or already in — the disk controller cache), in which case
        the faulting node must fall back to a normal disk-cache read.
        """
        fifo = self._fifos.get(channel)
        if not fifo:
            return False
        for i, (p, _swapper, _seq) in enumerate(fifo):
            if p == page:
                del fifo[i]
                self.stats.add("claims")
                return True
        return False

    def pending(self, channel: int) -> int:
        """Queued swap-outs for ``channel`` at this interface."""
        return len(self._fifos.get(channel, ()))

    # ------------------------------------------------------------- drain
    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _pick_channel(self) -> Optional[int]:
        loaded = {ch: len(q) for ch, q in self._fifos.items() if q}
        if not loaded:
            return None
        if self.drain_policy == DRAIN_MOST_LOADED:
            # heaviest first; deterministic tie-break on channel index
            return min(loaded, key=lambda ch: (-loaded[ch], ch))
        n = self.cfg.ring_channels
        for off in range(n):
            ch = (self._rr_next + off) % n
            if loaded.get(ch):
                self._rr_next = (ch + 1) % n
                return ch
        return None  # pragma: no cover - loaded was non-empty

    def _drain(self) -> Generator[Event, Any, None]:
        """Copy swapped-out pages from the ring into the disk cache."""
        assert self.controller is not None
        ack_latency = self.cfg.message_overhead_pcycles
        while True:
            ch = self._pick_channel() if self.controller.has_room_for_write() else None
            if ch is None:
                self._wake = self.engine.event()
                yield self._wake
                continue
            fifo = self._fifos[ch]
            # "copies as many pages as possible": stay on this channel
            # until its swap-outs are exhausted or the cache fills.
            while fifo and self.controller.has_room_for_write():
                page, swapper, seq = fifo.popleft()
                channel = self.ring.channels[ch]
                yield self.engine.timeout(channel.read_delay(page))
                if not self.controller.has_room_for_write():
                    # A degraded (standard-path) swap-out can fill the
                    # cache while the page is read off the ring; requeue
                    # at the head and wait for room again.
                    fifo.appendleft((page, swapper, seq))
                    break
                self.controller.place_dirty(page)
                yield self.engine.timeout(ack_latency)
                self._ack(page, swapper)
                self.stats.add("drained_pages")

    def _ack(self, page: int, swapper: int) -> None:
        if self.ack_callback is None:
            raise RuntimeError("ack_callback not installed (machine wiring bug)")
        self.ack_callback(page, swapper)
