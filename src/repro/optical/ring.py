"""Delay-line storage on the optical ring's cache channels.

Physics (Section 2 of the paper): data sent onto a fiber loop circulates
with a fixed round-trip time and remains there until overwritten —
``capacity = num_channels * fiber_length * rate / speed_of_light``.
Table 1 gives a 52 usec round trip and 1.25 GB/s per channel, i.e.
~64 KB (16 pages) of storage per channel.

We model each channel as a set of page *slots*.  A page inserted at time
``t`` has phase ``t mod round_trip``; a reader must wait for the page's
leading edge to pass by — ``(phase - now) mod round_trip`` — and then
stream it off at the channel rate.  This makes read latency exact and
deterministic rather than a sampled mean.

Each channel is written only by its owner node (no arbitration, per the
paper's hardware-cost discussion) but can be read by any NWCache
interface.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.config import SimConfig
from repro.sim import Counter, Engine
from repro.sim.events import Event


class CacheChannel:
    """One WDM cache channel: delay-line page storage for one owner node."""

    def __init__(
        self, engine: Engine, cfg: SimConfig, owner: int, index: Optional[int] = None
    ) -> None:
        self.engine = engine
        self.cfg = cfg
        self.owner = owner
        #: global channel number on the ring (= owner when one per node)
        self.index = owner if index is None else index
        self.capacity = cfg.ring_slots_per_channel
        self._pages: Dict[int, float] = {}  # page -> insertion phase
        self._slot_waiters: Deque[Event] = deque()
        self._reserved = 0  # slots claimed by in-progress insertions
        #: latched true when the fault layer fails this channel for good
        self.failed = False
        #: transient drop: the channel is dark until this time
        self._down_until = 0.0
        self.stats = Counter()

    # -- capacity ------------------------------------------------------------
    @property
    def n_stored(self) -> int:
        """Pages currently circulating on the channel."""
        return len(self._pages)

    def has_room(self) -> bool:
        """True when an insertion can be started right now."""
        return self.n_stored + self._reserved < self.capacity

    def reserve_slot(self) -> Event:
        """Claim a slot for an insertion; fires when one is available.

        Swap-outs must reserve before transferring the page to the ring
        so two concurrent swap-outs cannot overcommit the channel.
        """
        ev = self.engine.event()
        if self.has_room():
            self._reserved += 1
            ev.succeed()
        else:
            self._slot_waiters.append(ev)
            self.stats.add("full_waits")
        return ev

    def cancel_reservation(self, ev: Event) -> bool:
        """Abandon a reservation (swap-out cancelled by a page reclaim).

        Works whether the reservation is still queued or already granted;
        a granted slot is handed to the next waiter.
        """
        try:
            self._slot_waiters.remove(ev)
            return True
        except ValueError:
            pass
        if ev.triggered:
            self.release_reservation()
            return True
        return False

    def release_reservation(self) -> None:
        """Return a granted-but-unused slot reservation."""
        if self._reserved < 1:
            raise RuntimeError(f"channel {self.owner}: no reservation to release")
        self._reserved -= 1
        if self._slot_waiters and self.has_room():
            self._reserved += 1
            self._slot_waiters.popleft().succeed()

    # -- faults ------------------------------------------------------------
    def available(self) -> bool:
        """True when the channel can accept swap-outs right now."""
        return not self.failed and self.engine.now >= self._down_until

    def fail(self) -> None:
        """Permanently fail the channel (fault injection).

        Queued slot waiters are woken with the ``"channel-failed"``
        marker so their swap-outs can degrade to the standard path; they
        hold no reservation, so nothing is released.  Circulating pages
        are swept separately by the injector.
        """
        self.failed = True
        self.stats.add("failures")
        self._void_waiters()

    def drop_until(self, t: float) -> None:
        """Transient drop: the channel is dark until time ``t``."""
        if t > self._down_until:
            self._down_until = t
        self.stats.add("drops")
        self._void_waiters()

    def _void_waiters(self) -> None:
        while self._slot_waiters:
            self._slot_waiters.popleft().succeed("channel-failed")

    # -- storage ------------------------------------------------------------
    def insert(self, page: int) -> None:
        """Commit a reserved insertion: the page starts circulating now."""
        if self._reserved < 1:
            raise RuntimeError(f"channel {self.owner}: insert without reservation")
        if page in self._pages:
            raise RuntimeError(f"channel {self.owner}: page {page} already stored")
        if self.n_stored >= self.capacity:
            raise RuntimeError(f"channel {self.owner}: over capacity")
        self._reserved -= 1
        self._pages[page] = self.engine.now % self.round_trip
        self.stats.add("insertions")

    def contains(self, page: int) -> bool:
        """True if ``page`` is circulating on this channel."""
        return page in self._pages

    def remove(self, page: int) -> None:
        """Free the page's slot (ACK received / victim read completed)."""
        if page not in self._pages:
            raise KeyError(f"channel {self.owner}: page {page} not stored")
        del self._pages[page]
        self.stats.add("removals")
        if self._slot_waiters and self.has_room():
            self._reserved += 1
            self._slot_waiters.popleft().succeed()

    # -- timing ----------------------------------------------------------------
    @property
    def round_trip(self) -> float:
        """Ring round-trip latency, pcycles."""
        return self.cfg.ring_round_trip_pcycles

    def insertion_time(self) -> float:
        """Serialization time to put one page on the channel."""
        return self.cfg.page_size / self.cfg.ring_rate

    def read_delay(self, page: int) -> float:
        """Wait for the page to come around, plus streaming it off."""
        phase = self._pages.get(page)
        if phase is None:
            raise KeyError(f"channel {self.owner}: page {page} not stored")
        alignment = (phase - self.engine.now) % self.round_trip
        return alignment + self.insertion_time()

    def pages(self) -> List[int]:
        """Snapshot of stored page ids (tests/inspection)."""
        return list(self._pages)


class OpticalRing:
    """All cache channels of the NWCache.

    With ``ring_channels == n_nodes`` (the paper's configuration) each
    node owns exactly one channel.  The OTDM future-work configuration
    (Section 4: "OTDM ... will potentially support 5000 channels") is
    supported by setting ``ring_channels`` to a multiple of ``n_nodes``:
    node ``n`` then owns the contiguous group of
    ``ring_channels / n_nodes`` channels starting at ``n * k``.
    """

    def __init__(self, engine: Engine, cfg: SimConfig) -> None:
        if cfg.ring_channels % cfg.n_nodes != 0:
            raise ValueError(
                f"ring_channels ({cfg.ring_channels}) must be a multiple of "
                f"n_nodes ({cfg.n_nodes})"
            )
        self.engine = engine
        self.cfg = cfg
        self.per_node = cfg.ring_channels // cfg.n_nodes
        self.channels: List[CacheChannel] = [
            CacheChannel(engine, cfg, owner=i // self.per_node, index=i)
            for i in range(cfg.ring_channels)
        ]
        #: set by the fault injector when any optical fault mode is
        #: active; gates the availability filter off the fault-free path
        self._faulty = False

    def channels_of(self, node: int) -> List[CacheChannel]:
        """All cache channels written by ``node``."""
        lo = node * self.per_node
        return self.channels[lo : lo + self.per_node]

    def channel_of(self, node: int) -> CacheChannel:
        """The first cache channel owned (written) by ``node``."""
        return self.channels[node * self.per_node]

    def best_channel(self, node: int) -> Optional[CacheChannel]:
        """The owned channel with the most free slots (swap-out target).

        Returns None when every channel the node owns is failed or
        dropped — the caller degrades to the standard swap-out path.
        """
        channels = self.channels_of(node)
        if self._faulty:
            channels = [ch for ch in channels if ch.available()]
            if not channels:
                return None
        return min(
            channels,
            key=lambda ch: (ch.n_stored + ch._reserved, ch.index),
        )

    @property
    def total_stored(self) -> int:
        """Pages currently stored on the whole ring."""
        return sum(ch.n_stored for ch in self.channels)

    def find(self, page: int) -> Optional[CacheChannel]:
        """The channel storing ``page``, if any (test helper; the VM
        tracks the channel in the page-table entry instead of searching)."""
        for ch in self.channels:
            if ch.contains(page):
                return ch
        return None
