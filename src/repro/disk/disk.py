"""Disk mechanics: seek + rotation + media transfer, with queueing.

Table 1 parameters: 2 ms minimum seek, 22 ms full-stroke seek, 4 ms
average rotational latency, 20 MB/s media rate.  The seek curve follows
the standard square-root-of-distance model between the two endpoints;
rotational latency is sampled uniformly in ``[0, 2 * average)`` from the
disk's own deterministic RNG stream.

The mechanism is a single server: concurrent requests queue, with
priorities (demand reads before write-backs before prefetches).
"""

from __future__ import annotations

import math
from typing import Any, Generator

import numpy as np

from repro.config import SimConfig
from repro.sim import Engine, Resource, Tally
from repro.sim.events import Event, Timeout

#: request priorities on the disk arm
PRIO_DEMAND = 0
PRIO_WRITEBACK = 1
PRIO_PREFETCH = 2


class Disk:
    """One disk: a single mechanism serving multi-page transfers."""

    def __init__(
        self,
        engine: Engine,
        cfg: SimConfig,
        rng: np.random.Generator,
        name: str = "",
    ) -> None:
        self.engine = engine
        self.cfg = cfg
        self.rng = rng
        self.name = name
        self.mechanism = Resource(engine, capacity=1, name=f"{name}.arm")
        self.current_cylinder = 0
        #: completed operations / pages moved
        self.n_ops = 0
        self.pages_moved = 0
        #: service time (seek+rotation+transfer, no queueing) per op
        self.service = Tally()
        #: total time ops spent queued + in service
        self.response = Tally()
        #: fault hook (repro.sim.faults.DiskFaultState) — None when the
        #: fault layer is off, keeping the io() path zero-cost
        self._faults: Any = None
        #: operations that completed with an injected error
        self.n_errors = 0
        #: latched true once the disk enters degraded mode
        self.degraded = False

    # -- timing model -------------------------------------------------------
    def cylinder_of(self, block: int) -> int:
        """Cylinder holding ``block``."""
        return (block // self.cfg.blocks_per_cylinder) % self.cfg.disk_cylinders

    def seek_time(self, distance: int) -> float:
        """Seek pcycles for a ``distance``-cylinder move (0 -> no seek)."""
        if distance < 0:
            raise ValueError(f"negative seek distance {distance}")
        if distance == 0:
            return 0.0
        span = max(self.cfg.disk_cylinders - 1, 1)
        frac = math.sqrt(distance / span)
        return self.cfg.seek_min_pcycles + frac * (
            self.cfg.seek_max_pcycles - self.cfg.seek_min_pcycles
        )

    def transfer_time(self, npages: int) -> float:
        """Media transfer pcycles for ``npages`` consecutive pages."""
        return npages * self.cfg.page_size / self.cfg.disk_rate

    # -- operation -------------------------------------------------------------
    def io(
        self, block: int, npages: int = 1, priority: int = PRIO_DEMAND
    ) -> Generator[Event, Any, bool]:
        """Perform one (multi-page, consecutive) disk operation.

        Generator: yields until the transfer completes.  Reads and writes
        cost the same in this model; ``priority`` orders queued requests.
        Returns True on success, False when the fault layer injected an
        error into this operation (the mechanism time is still consumed;
        the controller decides whether to retry).
        """
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        t_queue = self.engine.now
        req = self.mechanism.request(priority)
        yield req
        try:
            cyl = self.cylinder_of(block)
            seek = self.seek_time(abs(cyl - self.current_cylinder))
            rotation = float(self.rng.uniform(0.0, 2.0 * self.cfg.rotational_pcycles))
            xfer = self.transfer_time(npages)
            self.current_cylinder = cyl
            faults = self._faults
            service = seek + rotation + xfer
            if faults is not None:
                service += faults.service_penalty()
            yield Timeout(self.engine, service)
            self.n_ops += 1
            self.pages_moved += npages
            self.service.record(service)
            self.response.record(self.engine.now - t_queue)
            if faults is not None and faults.roll_error():
                self.n_errors += 1
                return False
            return True
        finally:
            self.mechanism.release(req)

    def utilization(self, total_time: float) -> float:
        """Fraction of ``total_time`` the mechanism was busy."""
        return self.mechanism.utilization(total_time)
