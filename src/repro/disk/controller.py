"""Disk controller with cache, prefetching, and the swap-out protocol.

The controller cache (16 KB = 4 pages by default) holds a mix of *clean*
pages (demand reads, prefetches, already-flushed swap-outs) and *dirty*
pages (swap-outs awaiting their disk write).  Protocol, per Section 3.1:

* A swap-out that finds room is placed dirty and **ACK**\\ ed; writes have
  preference over prefetches, so an incoming swap-out may evict a clean
  page.  When every slot is dirty the controller **NACK**\\ s, records the
  requester in a FIFO, and sends **OK** when room appears, prompting a
  re-send.
* A background flusher writes dirty pages to disk oldest-first,
  **combining** pages that occupy consecutive disk blocks and sit in the
  cache simultaneously into a single disk write (Tables 5/6 measure the
  average combining factor).
* Reads hit the cache or go to disk.  Under **optimal** prefetching every
  read is satisfied from the cache with the disk untouched (the paper's
  idealization of perfect prefetch).  Under **naive** prefetching a miss
  additionally fills the cache with the pages sequentially following the
  missed one (never evicting dirty pages).
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from itertools import count
from typing import Any, Deque, Dict, Generator, List, Optional

from repro.config import SimConfig
from repro.disk.disk import PRIO_DEMAND, PRIO_PREFETCH, PRIO_WRITEBACK, Disk
from repro.disk.filesystem import FileSystem
from repro.sim import Counter, Engine, Tally
from repro.sim.events import Event, Timeout


class PrefetchMode(str, enum.Enum):
    """The paper's two prefetching extremes, plus a realistic middle.

    The paper's Discussion expects "realistic and sophisticated
    prefetching techniques" to land between its two extremes; ``STREAM``
    implements one: a sequential-stream detector (in the spirit of the
    history-guided prefetchers the paper cites) that prefetches ahead
    only once it has seen consecutive reads, instead of after every miss.
    """

    OPTIMAL = "optimal"  #: every read hits the controller cache
    NAIVE = "naive"      #: sequential fill after each miss
    STREAM = "stream"    #: prefetch ahead of detected sequential streams

#: read-history window of the stream detector, pages
STREAM_HISTORY = 16


class _Slot:
    """One cached page."""

    __slots__ = ("page", "dirty", "order")

    def __init__(self, page: int, dirty: bool, order: int) -> None:
        self.page = page
        self.dirty = dirty
        self.order = order  # arrival sequence of the current dirty data


class DiskController:
    """Cache + protocol front-end for one :class:`~repro.disk.disk.Disk`."""

    def __init__(
        self,
        engine: Engine,
        cfg: SimConfig,
        disk: Disk,
        fs: FileSystem,
        prefetch: PrefetchMode,
        name: str = "",
    ) -> None:
        self.engine = engine
        self.cfg = cfg
        self.disk = disk
        self.fs = fs
        self.prefetch = PrefetchMode(prefetch)
        self.name = name
        self.capacity = cfg.disk_cache_pages
        self._slots: "OrderedDict[int, _Slot]" = OrderedDict()  # page -> slot, LRU
        self._order = count()
        self._write_waiters: Deque[Event] = deque()
        self._flush_kick: Optional[Event] = None
        self._inflight_prefetch: Dict[int, Event] = {}
        self._read_history: Deque[int] = deque(maxlen=STREAM_HISTORY)
        self._room_listeners: List[Any] = []
        #: swap-outs combined per disk write (Tables 5/6)
        self.combining = Tally()
        self.stats = Counter()
        #: disk-operation dispatch: the bare disk op by default, swapped
        #: for the retrying wrapper when a fault plan enables disk errors
        self._io = disk.io
        self._fault_plan: Any = None
        self._fault_injector: Any = None
        #: attempt an uncontended clock jump for the fixed controller
        #: overhead on reads (set by the machine when epoch execution is
        #: active; bit-identical to the evented timeout either way)
        self.jump_clock = False
        engine.process(self._flusher())

    # ------------------------------------------------------------- inspection
    @property
    def n_cached(self) -> int:
        """Pages currently in the cache."""
        return len(self._slots)

    @property
    def n_dirty(self) -> int:
        """Dirty (unflushed swap-out) pages in the cache."""
        return sum(1 for s in self._slots.values() if s.dirty)

    def is_cached(self, page: int) -> bool:
        """True if ``page`` currently occupies a slot."""
        return page in self._slots

    def has_room_for_write(self) -> bool:
        """Can a swap-out be accepted right now?  (Writes may evict clean
        pages, so only an all-dirty cache refuses.)"""
        return len(self._slots) < self.capacity or self.n_dirty < self.capacity

    # ------------------------------------------------------------- listeners
    def add_room_listener(self, callback: Any) -> None:
        """``callback()`` runs whenever write room (re)appears (drain hook)."""
        self._room_listeners.append(callback)

    def _notify_room(self) -> None:
        freed = self.capacity - self.n_dirty
        while self._write_waiters and freed > 0:
            self._write_waiters.popleft().succeed()  # the paper's OK message
            freed -= 1
        for cb in self._room_listeners:
            cb()

    # ------------------------------------------------------------- writes
    def try_accept_write(self, page: int) -> bool:
        """Attempt to place a swap-out; True = ACK, False = NACK."""
        slot = self._slots.get(page)
        if slot is not None:
            slot.dirty = True
            slot.order = next(self._order)
            self._slots.move_to_end(page)
            self.stats.add("writes_accepted")
            self._kick_flusher()
            return True
        if len(self._slots) >= self.capacity:
            victim = self._lru_clean()
            if victim is None:
                self.stats.add("writes_nacked")
                return False
            del self._slots[victim]
        self._slots[page] = _Slot(page, dirty=True, order=next(self._order))
        self.stats.add("writes_accepted")
        self._kick_flusher()
        return True

    def wait_for_room(self) -> Event:
        """Join the NACK FIFO; the event fires on the controller's OK."""
        ev = self.engine.event()
        self._write_waiters.append(ev)
        return ev

    def cancel_wait(self, ev: Event) -> bool:
        """Leave the NACK FIFO (swap-out cancelled by a page reclaim)."""
        try:
            self._write_waiters.remove(ev)
            return True
        except ValueError:
            return False

    def place_dirty(self, page: int) -> None:
        """Place a page copied off the NWCache ring (drain path).

        The drain only calls this after checking :meth:`has_room_for_write`,
        so refusal here is a protocol bug.
        """
        if not self.try_accept_write(page):
            raise RuntimeError(f"{self.name}: drain placed a page with no room")

    # ------------------------------------------------------------- reads
    def note_optimal_read(self, page: int) -> str:
        """Bookkeeping for an OPTIMAL-mode read (see :meth:`read`).

        Under idealized prefetching a read never blocks on the disk, so
        the whole service is the controller-overhead timeout plus this
        cache touch.  The caller pays the timeout itself and calls this,
        skipping the :meth:`read` delegate generator on the fault path.
        """
        if page in self._slots:
            self._slots.move_to_end(page)
        self.stats.add("read_hits")
        return "hit"

    def read(self, page: int) -> Generator[Event, Any, str]:
        """Service a page read; returns ``"hit"`` or ``"miss"``.

        The caller models the data's journey to the requesting node (I/O
        bus, network, memory bus); this method models cache lookup, the
        disk operation on a miss, and naive prefetching.
        """
        d = self.cfg.controller_overhead_pcycles
        if not (self.jump_clock and self.engine.try_jump(d, 1)):
            yield Timeout(self.engine, d)
        if self.prefetch is PrefetchMode.OPTIMAL:
            # Idealized prefetching: the page is always already cached
            # (read "in the background of page read requests").
            return self.note_optimal_read(page)
        streaming = False
        if self.prefetch is PrefetchMode.STREAM:
            streaming = (
                page - 1 in self._read_history or page - 2 in self._read_history
            )
            self._read_history.append(page)
        inflight = self._inflight_prefetch.get(page)
        if inflight is not None:
            # The page is on the platters under an in-flight prefetch op:
            # the read waits for that disk operation, so it pays (most of)
            # a disk access — classify as a miss, not a cache hit.
            yield inflight
            self.stats.add("read_prefetch_waits")
            if page in self._slots:
                self._slots.move_to_end(page)
                return "miss"
        slot = self._slots.get(page)
        if slot is not None:
            self._slots.move_to_end(page)
            self.stats.add("read_hits")
            if streaming:
                # keep running ahead of a detected sequential stream
                self._start_prefetch(page)
            return "hit"
        self.stats.add("read_misses")
        yield from self._io(self.fs.block_of(page), 1, PRIO_DEMAND)
        self._insert_clean(page)
        if self.prefetch is PrefetchMode.NAIVE or streaming:
            self._start_prefetch(page)
        return "miss"

    # ------------------------------------------------------------- fault policy
    def enable_fault_policy(self, plan: Any, injector: Any) -> None:
        """Route disk operations through the retry/backoff wrapper.

        Called by the fault injector when the plan enables disk errors;
        ``plan`` carries the retry parameters and ``injector`` the shared
        fault accounting.
        """
        self._fault_plan = plan
        self._fault_injector = injector
        self._io = self._retrying_io

    def _retrying_io(
        self, block: int, npages: int = 1, priority: int = PRIO_DEMAND
    ) -> Generator[Event, Any, bool]:
        """Disk op with retry, exponential backoff, and timeout.

        A failed operation is retried up to ``plan.max_retries`` times,
        waiting ``retry_backoff * 2**(attempt-1)`` between attempts.
        When retries are exhausted the controller declares a timeout,
        charges the timeout penalty, and recovers by proceeding as if the
        final attempt had succeeded (the model has no data to corrupt —
        only the time and the accounting differ).
        """
        plan = self._fault_plan
        faults = self._fault_injector.faults
        attempt = 0
        while True:
            ok = yield from self.disk.io(block, npages, priority)
            if ok:
                if attempt:
                    self.stats.add("io_recovered")
                    faults.add("io_recovered")
                return True
            attempt += 1
            self.stats.add("io_retries")
            faults.add("io_retries")
            if attempt > plan.max_retries:
                self.stats.add("io_timeouts")
                faults.add("io_timeouts")
                yield Timeout(self.engine, plan.retry_timeout_penalty_pcycles)
                return False
            yield Timeout(
                self.engine, plan.retry_backoff_pcycles * (2.0 ** (attempt - 1))
            )

    # ------------------------------------------------------------- internals
    def _lru_clean(self) -> Optional[int]:
        """Oldest-touched clean page, or None if all slots are dirty."""
        for p, slot in self._slots.items():
            if not slot.dirty:
                return p
        return None

    def _insert_clean(self, page: int) -> bool:
        """Cache a clean page if possible without evicting dirty data."""
        if page in self._slots:
            self._slots.move_to_end(page)
            return True
        if len(self._slots) >= self.capacity:
            victim = self._lru_clean()
            if victim is None:
                self.stats.add("read_bypass")
                return False
            del self._slots[victim]
        self._slots[page] = _Slot(page, dirty=False, order=-1)
        return True

    def _start_prefetch(self, missed_page: int) -> None:
        """Naive prefetch: queue the pages sequentially following a miss."""
        room = self.capacity - self.n_dirty - 1
        run: List[int] = []
        prev = missed_page
        while len(run) < room:
            nxt = prev + 1
            if not self.fs.consecutive_on_disk(prev, nxt):
                break
            if nxt not in self._slots and nxt not in self._inflight_prefetch:
                run.append(nxt)
            prev = nxt
        if run:
            self.engine.process(self._prefetcher(run))

    def _prefetcher(self, run: List[int]) -> Generator[Event, Any, None]:
        done = self.engine.event()
        for p in run:
            self._inflight_prefetch[p] = done
        try:
            yield from self._io(
                self.fs.block_of(run[0]), len(run), PRIO_PREFETCH
            )
            for p in run:
                self._insert_clean(p)
            self.stats.add("prefetch_pages", len(run))
        finally:
            for p in run:
                self._inflight_prefetch.pop(p, None)
            done.succeed()

    def _kick_flusher(self) -> None:
        if self._flush_kick is not None and not self._flush_kick.triggered:
            self._flush_kick.succeed()

    def _flusher(self) -> Generator[Event, Any, None]:
        """Write dirty pages to disk oldest-first, combining runs."""
        while True:
            dirty = [s for s in self._slots.values() if s.dirty]
            if not dirty:
                self._flush_kick = self.engine.event()
                yield self._flush_kick
                continue
            oldest = min(dirty, key=lambda s: s.order)
            run = self._combining_run(oldest.page)
            orders = {p: self._slots[p].order for p in run}
            yield from self._io(
                self.fs.block_of(run[0]), len(run), PRIO_WRITEBACK
            )
            ncombined = 0
            for p in run:
                slot = self._slots.get(p)
                # Only mark clean if the data we wrote is still current
                # (a re-swap during the disk write re-dirties the slot).
                if slot is not None and slot.dirty and slot.order == orders[p]:
                    slot.dirty = False
                    ncombined += 1
            self.stats.add("flush_ops")
            self.stats.add("flush_pages", ncombined)
            self.combining.record(len(run))
            self._notify_room()

    def _combining_run(self, page: int) -> List[int]:
        """Maximal run of cached-dirty, disk-consecutive pages around ``page``."""
        run = [page]
        p = page
        while True:
            q = p - 1
            slot = self._slots.get(q)
            if (
                slot is None
                or not slot.dirty
                or not self.fs.consecutive_on_disk(q, p)
            ):
                break
            run.insert(0, q)
            p = q
        p = page
        while True:
            q = p + 1
            slot = self._slots.get(q)
            if (
                slot is None
                or not slot.dirty
                or not self.fs.consecutive_on_disk(p, q)
            ):
                break
            run.append(q)
            p = q
        return run
