"""Disk subsystem: parallel file system, disk mechanics, controllers.

Pages (= disk blocks, per the paper's footnote 2) are stored in groups of
32 consecutive pages, with groups assigned round-robin to the disks of
the I/O-enabled nodes.  Each disk has a controller with a small cache
(16 KB default) that services page reads (with optimal or naive
prefetching) and page swap-outs (ACK/NACK/OK protocol, write combining).
"""

from repro.disk.controller import DiskController, PrefetchMode
from repro.disk.disk import Disk
from repro.disk.filesystem import FileSystem

__all__ = ["Disk", "DiskController", "FileSystem", "PrefetchMode"]
