"""The parallel file system: page-to-disk placement.

Per Section 3.1 of the paper: *"pages are stored in groups of 32
consecutive pages.  The parallel file system assigns each of these
groups to a different disk in round-robin fashion."*  Within a group,
pages occupy consecutive disk blocks, which is what makes write
combining of consecutive swap-outs possible.

Applications ``mmap`` their files; we model that by allocating each
application a contiguous range of file pages at machine construction.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import SimConfig


class FileSystem:
    """Maps global file page numbers to (disk, block) locations."""

    def __init__(self, cfg: SimConfig, n_disks: int) -> None:
        if n_disks < 1:
            raise ValueError(f"need at least one disk, got {n_disks}")
        self.cfg = cfg
        self.n_disks = n_disks
        self._next_page = 0

    # -- allocation -----------------------------------------------------------
    def allocate(self, npages: int) -> range:
        """Reserve ``npages`` consecutive file pages; returns their ids.

        Allocations are group-aligned so distinct files never share a
        striping group (and hence never share disk blocks).
        """
        if npages < 1:
            raise ValueError(f"npages must be >= 1, got {npages}")
        g = self.cfg.pages_per_group
        start = ((self._next_page + g - 1) // g) * g
        self._next_page = start + npages
        return range(start, start + npages)

    @property
    def pages_allocated(self) -> int:
        """High-water mark of allocated page ids."""
        return self._next_page

    # -- placement ------------------------------------------------------------
    def locate(self, page: int) -> Tuple[int, int]:
        """``(disk index, block number)`` storing ``page``."""
        if page < 0:
            raise ValueError(f"negative page id {page}")
        g = self.cfg.pages_per_group
        group, offset = divmod(page, g)
        disk = group % self.n_disks
        block = (group // self.n_disks) * g + offset
        return disk, block

    def disk_of(self, page: int) -> int:
        """Disk index storing ``page``."""
        return self.locate(page)[0]

    def block_of(self, page: int) -> int:
        """Block number of ``page`` on its disk."""
        return self.locate(page)[1]

    def consecutive_on_disk(self, page_a: int, page_b: int) -> bool:
        """True when ``page_b`` is the disk block right after ``page_a``.

        Holds exactly when the pages are consecutive *and* in the same
        striping group (group boundaries jump to another disk).
        """
        if page_b != page_a + 1:
            return False
        return page_a // self.cfg.pages_per_group == page_b // self.cfg.pages_per_group

    def pages_on_disk(self, disk: int, upto_page: int) -> List[int]:
        """All page ids < ``upto_page`` on ``disk`` (test helper)."""
        return [p for p in range(upto_page) if self.disk_of(p) == disk]
