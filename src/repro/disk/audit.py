"""Invariants over the disk subsystem: controller caches and mechanisms.

The controller cache protocol (PAPER.md Section 3.1) and the disk
mechanism queueing reduce to checkable laws: a cache never holds more
than ``disk_cache_pages`` slots and its slot bookkeeping stays coherent;
a disk's operation/page counters only grow, every completed operation is
recorded exactly once in both the service and the response tallies, and
the mechanism's FIFO never leaves requests queued while the server idles.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim.audit import Invariant


class DiskCacheInvariant(Invariant):
    """Controller-cache structural coherence (capacity, slots, waiters)."""

    name = "disk-cache"

    def __init__(self, controllers: List[Any]) -> None:
        self.controllers = controllers

    def check(self, now: float) -> None:
        for ctrl in self.controllers:
            if len(ctrl._slots) > ctrl.capacity:
                self.fail(
                    f"{ctrl.name}: {len(ctrl._slots)} slots used, capacity "
                    f"{ctrl.capacity}",
                    now,
                )
            dirty_orders: Dict[int, int] = {}
            for page, slot in ctrl._slots.items():
                if slot.page != page:
                    self.fail(
                        f"{ctrl.name}: slot keyed {page} holds page "
                        f"{slot.page}",
                        now,
                    )
                if slot.dirty:
                    if slot.order < 0:
                        self.fail(
                            f"{ctrl.name}: dirty page {page} has no arrival "
                            f"order ({slot.order})",
                            now,
                        )
                    if slot.order in dirty_orders:
                        self.fail(
                            f"{ctrl.name}: pages {dirty_orders[slot.order]} "
                            f"and {page} share dirty order {slot.order}",
                            now,
                        )
                    dirty_orders[slot.order] = page
            for ev in ctrl._write_waiters:
                if ev.triggered:
                    self.fail(
                        f"{ctrl.name}: triggered event still in the NACK "
                        "FIFO",
                        now,
                    )
            for page, ev in ctrl._inflight_prefetch.items():
                if ev.triggered:
                    self.fail(
                        f"{ctrl.name}: page {page} marked in-flight under a "
                        "completed prefetch",
                        now,
                    )


class DiskFaultInvariant(Invariant):
    """Disk-error bookkeeping stays conserved under fault injection.

    Stateful: a disk's error counter is monotonic and its degraded flag
    one-way; every disk error produced exactly one controller retry
    (``disk.n_errors == io_retries``), and retries dominate their
    outcomes (``io_recovered + io_timeouts <= io_retries``).
    """

    name = "disk-faults"

    def __init__(self, controllers: List[Any]) -> None:
        self.controllers = controllers
        self._last: Dict[str, tuple] = {
            c.name: (c.disk.n_errors, c.disk.degraded) for c in controllers
        }

    def check(self, now: float) -> None:
        for ctrl in self.controllers:
            disk = ctrl.disk
            last_errors, last_degraded = self._last[ctrl.name]
            if disk.n_errors < last_errors:
                self.fail(
                    f"{disk.name}: n_errors shrank {last_errors} -> "
                    f"{disk.n_errors}",
                    now,
                )
            if last_degraded and not disk.degraded:
                self.fail(f"{disk.name}: degraded flag cleared", now)
            self._last[ctrl.name] = (disk.n_errors, disk.degraded)
            retries = ctrl.stats["io_retries"]
            recovered = ctrl.stats["io_recovered"]
            timeouts = ctrl.stats["io_timeouts"]
            if disk.n_errors != retries:
                self.fail(
                    f"{ctrl.name}: {disk.n_errors} disk errors but "
                    f"{retries} retries recorded",
                    now,
                )
            if recovered + timeouts > retries:
                self.fail(
                    f"{ctrl.name}: {recovered} recoveries + {timeouts} "
                    f"timeouts exceed {retries} retries",
                    now,
                )


class DiskQueueInvariant(Invariant):
    """Disk counters and the mechanism queue stay conserved.

    Stateful: operation and page counters are monotonic between audit
    passes, each completed op records exactly one service and one
    response sample (``service.n == response.n == n_ops``), response
    time dominates service time in aggregate, and the single-server arm
    never idles while requests queue.
    """

    name = "disk-queue"

    def __init__(self, disks: List[Any]) -> None:
        self.disks = disks
        self._last: Dict[str, tuple] = {
            d.name: (d.n_ops, d.pages_moved) for d in disks
        }

    def check(self, now: float) -> None:
        for d in self.disks:
            last_ops, last_pages = self._last[d.name]
            if d.n_ops < last_ops:
                self.fail(f"{d.name}: n_ops shrank {last_ops} -> {d.n_ops}", now)
            if d.pages_moved < last_pages:
                self.fail(
                    f"{d.name}: pages_moved shrank {last_pages} -> "
                    f"{d.pages_moved}",
                    now,
                )
            self._last[d.name] = (d.n_ops, d.pages_moved)
            if d.pages_moved < d.n_ops:
                self.fail(
                    f"{d.name}: {d.pages_moved} pages over {d.n_ops} ops "
                    "(ops move >= 1 page each)",
                    now,
                )
            if d.service.n != d.n_ops or d.response.n != d.n_ops:
                self.fail(
                    f"{d.name}: {d.n_ops} ops but {d.service.n} service / "
                    f"{d.response.n} response samples",
                    now,
                )
            if d.response.total < d.service.total - 1e-6:
                self.fail(
                    f"{d.name}: total response {d.response.total} < total "
                    f"service {d.service.total}",
                    now,
                )
            if not (0 <= d.current_cylinder < d.cfg.disk_cylinders):
                self.fail(
                    f"{d.name}: arm at bogus cylinder {d.current_cylinder}",
                    now,
                )
            arm = d.mechanism
            if len(arm.users) > arm.capacity:
                self.fail(
                    f"{d.name}: {len(arm.users)} holders on a capacity-"
                    f"{arm.capacity} mechanism",
                    now,
                )
            if arm.queue and len(arm.users) < arm.capacity:
                self.fail(
                    f"{d.name}: {len(arm.queue)} requests queued while the "
                    "arm idles",
                    now,
                )
