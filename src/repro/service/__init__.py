"""Durable sweep service: journaled work queue, leases, checkpointed runs.

The batch runner (:mod:`repro.core.batch`) makes one ``run_batch``
*invocation* crash-safe; this package makes the **sweep itself** durable.
All coordination state lives in an append-only, checksummed journal under
a shared directory, so any number of workers — local processes or remote
hosts mounting the same path — can pull cells under time-bounded leases,
die at arbitrary points, and still converge the sweep to exactly the
results an uninterrupted run would have produced (the content-addressed
result cache is the dedupe layer that makes re-execution idempotent).

Layers, bottom up:

* :mod:`repro.service.journal` — the crash-safe record log;
* :mod:`repro.service.lease` — the spec state machine
  (pending → leased → done/failed) and the on-disk :class:`SweepQueue`;
* :mod:`repro.service.checkpoint` — deterministic snapshot/verify
  checkpointing for very large cells;
* :mod:`repro.service.worker` — the leased worker loop with heartbeat
  renewal and graceful drain;
* :mod:`repro.service.server` — ``repro serve``: submit/status/results
  over HTTP with streaming progress.

See ``docs/robustness.md`` §4 for the protocol and a kill-and-resume
walkthrough.
"""

from repro.service.journal import Journal, JournalCorruption
from repro.service.lease import (
    SpecState,
    SweepQueue,
    SweepState,
    spec_from_dict,
    spec_to_dict,
)
from repro.service.worker import Worker

__all__ = [
    "Journal",
    "JournalCorruption",
    "SpecState",
    "SweepQueue",
    "SweepState",
    "Worker",
    "spec_from_dict",
    "spec_to_dict",
]
