"""Crash-safe append-only journal: the sweep service's source of truth.

Every coordination action (submit, lease, renew, done, fail, requeue)
is one JSON record appended to a single journal file.  The format is
built so that *any* interruption — a worker SIGKILLed mid-append, a
host losing power, a truncated copy — degrades to a readable prefix,
never to silent corruption:

* each record is one line: ``<sha256[:16] of payload> <payload json>\\n``
  — a record is valid iff its checksum matches and it ends in a newline;
* appends happen under an exclusive :func:`flock` on a sidecar lock
  file, with the line written in a single ``write`` and fsync'd before
  the lock is released, so concurrent writers never interleave bytes
  and an acknowledged record survives the process;
* replay (:meth:`Journal.replay`) validates every line; a damaged or
  incomplete **tail** record (the only kind a crash can produce) is
  dropped with :attr:`Journal.truncated_tail` set, while a damaged
  record in the *middle* of the file — which no crash of this writer
  can produce — raises :class:`JournalCorruption` loudly.

The journal itself is order-preserving but deliberately dumb: the
state-machine semantics (idempotence, lease arbitration) live in
:mod:`repro.service.lease`, which is what makes replaying a journal —
or replaying it twice, or replaying a prefix — safe.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List

from repro.ioutil import fsync_directory

try:  # pragma: no cover - fcntl exists everywhere we support
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (no locking)
    fcntl = None  # type: ignore[assignment]

#: length of the hex checksum prefix on every journal line
_SUM_LEN = 16


class JournalCorruption(Exception):
    """A non-tail journal record failed validation (see module doc)."""


def record_line(record: Dict[str, Any]) -> bytes:
    """Encode one record as a checksummed journal line."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    payload = body.encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()[:_SUM_LEN]
    return digest.encode("ascii") + b" " + payload + b"\n"


def parse_line(line: bytes) -> Dict[str, Any]:
    """Decode and validate one journal line; raises ValueError on damage."""
    if len(line) < _SUM_LEN + 2 or line[_SUM_LEN : _SUM_LEN + 1] != b" ":
        raise ValueError("malformed journal line")
    digest, payload = line[:_SUM_LEN], line[_SUM_LEN + 1 :]
    if hashlib.sha256(payload).hexdigest()[:_SUM_LEN].encode() != digest:
        raise ValueError("journal record checksum mismatch")
    record = json.loads(payload)
    if not isinstance(record, dict):
        raise ValueError("journal record is not an object")
    return record


@contextmanager
def locked(lock_path: Path):
    """Exclusive advisory lock scoped to the ``with`` block.

    Serializes the read-decide-append critical sections of every queue
    operation across processes sharing the directory.  On platforms
    without ``fcntl`` the lock degrades to a no-op (single-writer use
    still works; the journal's per-record checksums still hold).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        # closing releases the flock
        os.close(fd)


class Journal:
    """One append-only checksummed record log (see module doc).

    Parameters
    ----------
    path:
        The journal file.  The sidecar ``<path>.lock`` file carries the
        cross-process flock; both live in the sweep directory.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.lock_path = self.path.with_name(self.path.name + ".lock")
        #: set by the last :meth:`replay`: a damaged/incomplete final
        #: record was dropped (the fingerprint of an interrupted append)
        self.truncated_tail = False

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------- writing
    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (exclusive lock + single write + fsync)."""
        with locked(self.lock_path):
            self._append_unlocked([record])

    def append_many(self, records: List[Dict[str, Any]]) -> None:
        """Durably append several records under one lock acquisition."""
        if not records:
            return
        with locked(self.lock_path):
            self._append_unlocked(records)

    def _append_unlocked(self, records: List[Dict[str, Any]]) -> None:
        data = b"".join(record_line(r) for r in records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        first_write = not self.path.exists()
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        if first_write:
            fsync_directory(self.path.parent)

    # ------------------------------------------------------------- reading
    def replay(self) -> List[Dict[str, Any]]:
        """Every valid record, in append order.

        Tolerates exactly the damage a crash can cause: a final record
        that is incomplete (no newline) or checksum-corrupt is dropped
        and :attr:`truncated_tail` is set.  Damage anywhere *before* the
        tail raises :class:`JournalCorruption` — that is bit rot or a
        foreign writer, and silently skipping records would let the
        state machine resurrect work that was already accounted for.
        """
        self.truncated_tail = False
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        records: List[Dict[str, Any]] = []
        lines = raw.split(b"\n")
        # a well-formed file ends with a newline, so the final split
        # element is empty; anything else is an interrupted append
        complete, tail = lines[:-1], lines[-1]
        if tail:
            self.truncated_tail = True
        for i, line in enumerate(complete):
            try:
                records.append(parse_line(line))
            except ValueError as exc:
                if i == len(complete) - 1:
                    # damaged final *complete* line: an append that was
                    # cut inside the line but after a stray newline, or
                    # a torn sector at the end — still tail damage
                    self.truncated_tail = True
                    break
                raise JournalCorruption(
                    f"{self.path}: record {i + 1}/{len(complete)} is "
                    f"damaged ({exc}); refusing to replay past it"
                ) from exc
        return records

    def _rewrite_unlocked(self, records: List[Dict[str, Any]]) -> None:
        """Replace the journal's contents (tmp + fsync + rename).

        Caller must hold the journal lock.  Readers racing the rename
        see either the old or the new journal, never a mixture.
        """
        import tempfile

        data = b"".join(record_line(r) for r in records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".jtmp")
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        fsync_directory(self.path.parent)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.replay())

    def __len__(self) -> int:
        return len(self.replay())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Journal({str(self.path)!r})"


def atomic_rewrite(journal: Journal, records: List[Dict[str, Any]]) -> None:
    """Replace a journal's contents atomically (tmp + fsync + rename).

    Used for compaction; readers racing the rename see either the old
    or the new journal, never a mixture.
    """
    with locked(journal.lock_path):
        journal._rewrite_unlocked(records)
