"""Sweep state machine and the on-disk leased work queue.

State lives in a :class:`~repro.service.journal.Journal`; this module
gives the records meaning.  Each cell (an
:class:`~repro.core.batch.ExperimentSpec`, identified by its
content-addressed cache key) moves through::

    pending --claim--> leased --complete--> done
       ^                 |
       |                 +--fail (attempt <= budget, backoff)--+
       +--lease expiry---+                                     |
       +-------------------------------------------------------+
                         +--fail (budget exhausted)--> failed   (terminal)

Replay is **idempotent and order-tolerant** by construction: every
transition function is monotone (``done`` is absorbing, attempts only
grow, lease arbitration orders by ``(attempt, expires)``, per-attempt
accounting lives in sets), so applying a journal twice — or a shuffled
merge of two workers' records, or a crash-truncated prefix — never
double-counts work and never resurrects a finished cell.  The property
suite (``tests/property/test_journal_replay.py``) pins exactly this.

Specs cross the journal as JSON (:func:`spec_to_dict` /
:func:`spec_from_dict`).  Environment-dependent inputs that change
*results* — the ``NWCACHE_FAULTS`` default — are resolved at submit
time, so every worker runs the cell the submitter keyed, regardless of
its own environment.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.batch import ExperimentSpec, FailedSpec
from repro.core.runner import env_fault_spec
from repro.service.journal import Journal

#: cell states
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"

#: journal file name inside a sweep directory
JOURNAL_NAME = "journal.nwj"

#: spec fields carried through the journal (cfg is deliberately absent:
#: service specs are declarative; a pickled SimConfig has no stable JSON
#: form and would make journals machine-readable only)
_SPEC_FIELDS = (
    "app",
    "system",
    "prefetch",
    "data_scale",
    "min_free",
    "drain_policy",
    "audit",
    "compiled_traces",
    "faults",
    "app_params",
)


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """JSON form of a spec, with environment defaults resolved.

    Raises ``ValueError`` for specs the journal cannot carry faithfully:
    an explicit ``cfg`` (no stable JSON form), a non-string fault plan,
    or non-JSON ``app_params``.
    """
    if spec.cfg is not None:
        raise ValueError(
            "service specs must be declarative: pass app/system/prefetch/"
            "data_scale/min_free instead of an explicit cfg"
        )
    if spec.faults is not None and not isinstance(spec.faults, str):
        raise ValueError(
            f"service specs carry fault plans as spec strings, "
            f"got {type(spec.faults).__name__}"
        )
    d = {name: getattr(spec, name) for name in _SPEC_FIELDS}
    if d["faults"] is None:
        # resolve the submitter's env default so every worker simulates
        # (and keys) the same plan
        d["faults"] = env_fault_spec()
    try:
        json.dumps(d["app_params"])
    except (TypeError, ValueError) as exc:
        raise ValueError(f"app_params must be JSON-encodable: {exc}") from exc
    return d


def spec_from_dict(d: Dict[str, Any]) -> ExperimentSpec:
    """Rebuild a spec from its journal form (unknown keys rejected)."""
    unknown = set(d) - set(_SPEC_FIELDS)
    if unknown:
        raise ValueError(f"unknown spec fields {sorted(unknown)}")
    kwargs = dict(d)
    kwargs.setdefault("app_params", {})
    return ExperimentSpec(**kwargs)


@dataclass
class SpecState:
    """Replay-derived state of one cell."""

    key: str
    spec: Dict[str, Any]
    status: str = PENDING
    worker: Optional[str] = None
    lease_expires: float = 0.0
    #: attempt number of the currently live lease (meaningful only
    #: while ``status == LEASED``)
    lease_attempt: int = 0
    #: highest attempt number any lease/fail record has mentioned
    attempts: int = 0
    #: earliest wall-clock time the cell may be re-leased (backoff)
    not_before: float = 0.0
    last_error: str = ""
    #: (worker, attempt) marks — sets make duplicate records no-ops
    done_marks: Set[Tuple[str, int]] = field(default_factory=set)
    executed_marks: Set[Tuple[str, int]] = field(default_factory=set)
    fail_marks: Set[Tuple[str, int]] = field(default_factory=set)

    @property
    def executed_runs(self) -> int:
        """How many distinct attempts ran this cell to completion."""
        return len(self.executed_marks)

    def to_experiment_spec(self) -> ExperimentSpec:
        return spec_from_dict(self.spec)

    def to_failed_spec(self) -> FailedSpec:
        """The terminal-failure view of this cell (status ``failed``)."""
        return FailedSpec(
            self.to_experiment_spec(),
            kind="error",
            error=self.last_error or "retry budget exhausted",
            attempts=self.attempts,
        )


class SweepState:
    """The state machine: fold journal records into per-cell states."""

    def __init__(self) -> None:
        self.cells: Dict[str, SpecState] = {}
        self.order: List[str] = []

    # ------------------------------------------------------------ folding
    def apply(self, rec: Dict[str, Any]) -> None:
        """Fold one record in.  Idempotent; unknown types are ignored
        (forward compatibility), records for unknown keys are ignored
        (a truncated journal may have lost the submit — the cell then
        simply does not exist yet)."""
        rtype = rec.get("type")
        if rtype == "submit":
            key = rec["key"]
            if key not in self.cells:
                self.cells[key] = SpecState(key=key, spec=rec["spec"])
                self.order.append(key)
            return
        if rtype == "snapshot":
            self._apply_snapshot(rec)
            return
        cell = self.cells.get(rec.get("key"))
        if cell is None:
            return
        if rtype == "lease":
            self._apply_lease(cell, rec)
        elif rtype == "renew":
            if (
                cell.status == LEASED
                and cell.worker == rec["worker"]
            ):
                cell.lease_expires = max(
                    cell.lease_expires, float(rec["expires"])
                )
        elif rtype == "done":
            mark = (rec["worker"], int(rec["attempt"]))
            cell.done_marks.add(mark)
            if rec.get("executed", False):
                cell.executed_marks.add(mark)
            cell.status = DONE  # absorbing
            cell.worker = None
        elif rtype == "fail":
            self._apply_fail(cell, rec)
        elif rtype == "requeue":
            # cancels exactly the lease it names — a stale requeue
            # (issued before a newer lease) is a no-op
            if (
                cell.status == LEASED
                and cell.worker == rec["worker"]
                and cell.lease_expires == float(rec["expires"])
            ):
                cell.status = PENDING
                cell.worker = None

    def _apply_lease(self, cell: SpecState, rec: Dict[str, Any]) -> None:
        attempt = int(rec["attempt"])
        expires = float(rec["expires"])
        cell.attempts = max(cell.attempts, attempt)
        if cell.status in (DONE, FAILED):
            return
        concluded = max(
            (a for _, a in cell.fail_marks | cell.done_marks), default=0
        )
        if attempt <= concluded:
            # some attempt >= this one already concluded (attempt numbers
            # only increase); a re-delivered lease record must not
            # resurrect a superseded attempt
            return
        # arbitration: the newest lease wins; ties (same attempt) go to
        # the later expiry so a duplicated record is a no-op
        current = (cell.lease_attempt if cell.status == LEASED else 0,
                   cell.lease_expires if cell.status == LEASED else 0.0)
        if (attempt, expires) >= current:
            cell.status = LEASED
            cell.worker = rec["worker"]
            cell.lease_attempt = attempt
            cell.lease_expires = expires

    def _apply_snapshot(self, rec: Dict[str, Any]) -> None:
        """Fold a compaction snapshot (see :func:`snapshot_record`).

        A snapshot opening a compacted journal simply *is* the cell's
        state.  The merge below is monotone for the same reason every
        other fold is — ``done`` absorbs, counters only grow, marks are
        unions, lease arbitration is ordered — so replaying a snapshot
        twice, or merging one with live records that raced the
        compaction, never resurrects concluded work.
        """
        key = rec["key"]
        cell = self.cells.get(key)
        if cell is None:
            cell = SpecState(key=key, spec=rec["spec"])
            self.cells[key] = cell
            self.order.append(key)
        cell.attempts = max(cell.attempts, int(rec["attempts"]))
        cell.not_before = max(cell.not_before, float(rec["not_before"]))
        cell.done_marks |= {(w, int(a)) for w, a in rec["done"]}
        cell.executed_marks |= {(w, int(a)) for w, a in rec["executed"]}
        cell.fail_marks |= {(w, int(a)) for w, a in rec["fail"]}
        if rec.get("last_error"):
            cell.last_error = str(rec["last_error"])
        status = rec["status"]
        if cell.status != DONE:
            if status == DONE:
                cell.status = DONE
                cell.worker = None
            elif status == FAILED:
                cell.status = FAILED
                cell.worker = None
            elif status == LEASED and cell.status != FAILED:
                self._apply_lease(
                    cell,
                    {
                        "worker": rec["worker"],
                        "attempt": rec["lease_attempt"],
                        "expires": rec["lease_expires"],
                    },
                )
        if cell.status != LEASED:
            # restore the (stale, but replay-visible) lease bookkeeping
            # of concluded cells so compaction is byte-for-byte exact;
            # a *live* lease's fields stay whatever arbitration decided
            cell.lease_attempt = max(
                cell.lease_attempt, int(rec["lease_attempt"])
            )
            cell.lease_expires = max(
                cell.lease_expires, float(rec["lease_expires"])
            )

    def _apply_fail(self, cell: SpecState, rec: Dict[str, Any]) -> None:
        worker, attempt = rec["worker"], int(rec["attempt"])
        mark = (worker, attempt)
        if mark in cell.fail_marks:
            return
        cell.fail_marks.add(mark)
        cell.attempts = max(cell.attempts, attempt)
        cell.last_error = str(rec.get("error", ""))
        if cell.status == DONE:
            return
        if rec.get("terminal", False):
            cell.status = FAILED
            cell.worker = None
            return
        cell.not_before = max(cell.not_before, float(rec.get("not_before", 0.0)))
        # release the live lease only if it is this attempt's (or an
        # older one the failure supersedes); a *newer* lease — another
        # worker already claimed the retry — stays in place
        if cell.status == LEASED and cell.lease_attempt <= attempt:
            cell.status = PENDING
            cell.worker = None

    # ------------------------------------------------------------ queries
    def counts(self) -> Dict[str, int]:
        out = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for cell in self.cells.values():
            out[cell.status] += 1
        return out

    @property
    def settled(self) -> bool:
        """No runnable work left: every cell is done or terminally failed."""
        return all(
            c.status in (DONE, FAILED) for c in self.cells.values()
        )

    def expired_leases(self, now: float) -> List[SpecState]:
        return [
            c
            for c in self.cells.values()
            if c.status == LEASED and c.lease_expires <= now
        ]

    def claimable(self, now: float) -> Optional[SpecState]:
        """First submitted cell that is pending and past its backoff."""
        for key in self.order:
            cell = self.cells[key]
            if cell.status == PENDING and cell.not_before <= now:
                return cell
        return None


def snapshot_record(cell: SpecState) -> Dict[str, Any]:
    """One cell's full replay-derived state as a compaction record.

    Appending these (one per cell, in submission order) to an empty
    journal reproduces the folded state exactly — that equivalence is
    what lets :meth:`SweepQueue.maybe_compact` rewrite a long journal
    as ``len(cells)`` lines without changing any future decision.
    """
    return {
        "type": "snapshot",
        "key": cell.key,
        "spec": cell.spec,
        "status": cell.status,
        "worker": cell.worker,
        "lease_attempt": cell.lease_attempt,
        "lease_expires": cell.lease_expires,
        "attempts": cell.attempts,
        "not_before": cell.not_before,
        "last_error": cell.last_error,
        "done": sorted([w, a] for w, a in cell.done_marks),
        "executed": sorted([w, a] for w, a in cell.executed_marks),
        "fail": sorted([w, a] for w, a in cell.fail_marks),
    }


def replay_state(journal: Journal) -> SweepState:
    """Fold a journal into a :class:`SweepState`."""
    state = SweepState()
    for rec in journal.replay():
        state.apply(rec)
    return state


def default_worker_id() -> str:
    """``host:pid`` — unique enough across a shared directory."""
    return f"{socket.gethostname()}:{os.getpid()}"


class SweepQueue:
    """The durable work queue over a shared directory.

    All mutation goes through read-decide-append critical sections under
    the journal's cross-process lock, so any number of workers — and the
    submitter, and ``repro serve`` — can share ``root`` concurrently.

    Parameters
    ----------
    root:
        The sweep directory (created on first use).  Everything the
        sweep needs to survive a crash lives here: the journal and the
        per-cell checkpoint files.  Results go to the (separately
        configured) content-addressed result cache.
    lease_duration:
        Seconds a claim is valid without renewal.  A worker heartbeats
        at a third of this; a worker that dies or wedges past it has
        its cell re-queued by whoever looks next.
    retry_budget:
        Total attempts a cell may consume before it becomes a terminal
        :class:`~repro.core.batch.FailedSpec` (default 3).
    backoff_base:
        Base of the exponential re-queue backoff: attempt ``n`` becomes
        claimable ``backoff_base * 2**(n-1)`` seconds after it failed.
    compact_threshold:
        Journal line count past which :meth:`maybe_compact` rewrites
        the journal as one snapshot record per cell.  ``None`` disables
        compaction.  Long sweeps append every heartbeat and retry, so
        an uncompacted journal grows without bound while every
        operation replays all of it.
    """

    def __init__(
        self,
        root: "Path | str",
        lease_duration: float = 60.0,
        retry_budget: int = 3,
        backoff_base: float = 2.0,
        compact_threshold: Optional[int] = 4096,
    ) -> None:
        if lease_duration <= 0:
            raise ValueError(
                f"lease_duration must be positive, got {lease_duration}"
            )
        if retry_budget < 1:
            raise ValueError(f"retry_budget must be >= 1, got {retry_budget}")
        if compact_threshold is not None and compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1 or None, "
                f"got {compact_threshold}"
            )
        self.root = Path(root)
        self.journal = Journal(self.root / JOURNAL_NAME)
        self.lease_duration = float(lease_duration)
        self.retry_budget = int(retry_budget)
        self.backoff_base = float(backoff_base)
        self.compact_threshold = compact_threshold

    # ---------------------------------------------------------------- state
    def state(self) -> SweepState:
        """Fresh replay of the journal (the journal is the only truth)."""
        return replay_state(self.journal)

    def checkpoint_path(self, key: str) -> Path:
        return self.root / "checkpoints" / f"{key}.ckpt"

    # --------------------------------------------------------------- submit
    def submit(
        self, specs: Sequence["ExperimentSpec | Dict[str, Any]"]
    ) -> List[str]:
        """Append submit records for every not-yet-known spec.

        Returns the cell keys in spec order (already-submitted cells
        return their existing key; submission is idempotent).
        """
        prepared: List[Tuple[str, Dict[str, Any]]] = []
        keys: List[str] = []
        for spec in specs:
            if isinstance(spec, dict):
                spec = spec_from_dict(spec)
            d = spec_to_dict(spec)
            # key the *resolved* spec so every worker agrees with it
            key = spec_from_dict(d).key()
            keys.append(key)
            prepared.append((key, d))
        from repro.service.journal import locked

        with locked(self.journal.lock_path):
            state = replay_state(self.journal)
            fresh = [
                {"type": "submit", "key": key, "spec": d}
                for key, d in prepared
                if key not in state.cells
            ]
            # dedupe within the submission itself
            seen: Set[str] = set()
            unique = []
            for rec in fresh:
                if rec["key"] not in seen:
                    seen.add(rec["key"])
                    unique.append(rec)
            if unique:
                self.journal._append_unlocked(unique)
        return keys

    # ---------------------------------------------------------------- claim
    def claim(
        self,
        worker: str,
        now: Optional[float] = None,
        lease_duration: Optional[float] = None,
    ) -> Optional[Tuple[str, ExperimentSpec, int]]:
        """Lease the next runnable cell to ``worker``.

        Expires stale leases first (their cells re-queue), then leases
        the oldest pending cell whose backoff has elapsed.  Returns
        ``(key, spec, attempt)`` or ``None`` when nothing is claimable
        right now (the queue may still hold backed-off or leased cells —
        check :meth:`state`).
        """
        if now is None:
            now = time.time()
        duration = (
            self.lease_duration if lease_duration is None else lease_duration
        )
        from repro.service.journal import locked

        with locked(self.journal.lock_path):
            state = replay_state(self.journal)
            to_append: List[Dict[str, Any]] = []
            for cell in state.expired_leases(now):
                rec = {
                    "type": "requeue",
                    "key": cell.key,
                    "worker": cell.worker,
                    "expires": cell.lease_expires,
                    "at": now,
                }
                to_append.append(rec)
                state.apply(rec)
            cell = state.claimable(now)
            if cell is not None:
                attempt = cell.attempts + 1
                rec = {
                    "type": "lease",
                    "key": cell.key,
                    "worker": worker,
                    "attempt": attempt,
                    "expires": now + duration,
                }
                to_append.append(rec)
                state.apply(rec)
            if to_append:
                self.journal._append_unlocked(to_append)
            if cell is None:
                return None
            return cell.key, cell.to_experiment_spec(), cell.attempts

    def renew(self, key: str, worker: str, now: Optional[float] = None) -> None:
        """Heartbeat: extend ``worker``'s lease on ``key``."""
        if now is None:
            now = time.time()
        self.journal.append(
            {
                "type": "renew",
                "key": key,
                "worker": worker,
                "expires": now + self.lease_duration,
            }
        )

    # -------------------------------------------------------------- outcome
    def complete(
        self, key: str, worker: str, attempt: int, executed: bool
    ) -> None:
        """Mark a cell done.  ``executed=False`` records a cache-dedupe
        completion (the result already existed; nothing was simulated)."""
        self.journal.append(
            {
                "type": "done",
                "key": key,
                "worker": worker,
                "attempt": int(attempt),
                "executed": bool(executed),
            }
        )

    def fail(
        self,
        key: str,
        worker: str,
        attempt: int,
        error: str,
        now: Optional[float] = None,
    ) -> bool:
        """Record a failed attempt; returns True when it was terminal.

        Non-terminal failures re-queue the cell with exponential
        backoff; once ``retry_budget`` attempts are spent the cell is a
        terminal :data:`FAILED` (see :meth:`failed_specs`).
        """
        if now is None:
            now = time.time()
        attempt = int(attempt)
        terminal = attempt >= self.retry_budget
        self.journal.append(
            {
                "type": "fail",
                "key": key,
                "worker": worker,
                "attempt": attempt,
                "error": str(error)[:2000],
                "terminal": terminal,
                "not_before": now + self.backoff_base * 2 ** (attempt - 1),
            }
        )
        return terminal

    # ----------------------------------------------------------- compaction
    def maybe_compact(self) -> bool:
        """Compact the journal if it has outgrown ``compact_threshold``.

        Rewrites it atomically as one :func:`snapshot_record` per cell
        (submission order preserved); the replayed state — and thus
        every future claim, retry, and status decision — is unchanged.
        Safe to call from any worker or status path at any time: the
        rewrite happens under the journal's cross-process lock, and a
        reader racing the rename sees the old or new file, never a mix.
        Returns True when a rewrite happened.
        """
        if self.compact_threshold is None:
            return False
        from repro.service.journal import locked

        with locked(self.journal.lock_path):
            records = self.journal.replay()
            if len(records) <= self.compact_threshold:
                return False
            state = SweepState()
            for rec in records:
                state.apply(rec)
            self.journal._rewrite_unlocked(
                [snapshot_record(state.cells[key]) for key in state.order]
            )
        return True

    # -------------------------------------------------------------- results
    def failed_specs(self) -> List[FailedSpec]:
        """Terminal failures, as the batch runner would report them."""
        state = self.state()
        return [
            state.cells[k].to_failed_spec()
            for k in state.order
            if state.cells[k].status == FAILED
        ]

    def results(self, cache) -> Dict[str, Any]:
        """Cached results for every done cell (key -> RunResult).

        Cells whose result has been evicted from the cache are omitted;
        re-submitting them is safe (execution is idempotent).
        """
        state = self.state()
        out: Dict[str, Any] = {}
        for key in state.order:
            if state.cells[key].status == DONE:
                res = cache.get(key)
                if res is not None:
                    out[key] = res
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepQueue({str(self.root)!r})"


def asdict_state(state: SweepState) -> Dict[str, Any]:
    """JSON view of a sweep's state (the ``status`` CLI / HTTP payload)."""
    return {
        "counts": state.counts(),
        "settled": state.settled,
        "cells": {
            key: {
                "app": state.cells[key].spec.get("app"),
                "system": state.cells[key].spec.get("system"),
                "prefetch": state.cells[key].spec.get("prefetch"),
                "status": state.cells[key].status,
                "worker": state.cells[key].worker,
                "attempts": state.cells[key].attempts,
                "executed_runs": state.cells[key].executed_runs,
                "last_error": state.cells[key].last_error,
            }
            for key in state.order
        },
    }
