"""``repro serve``: the sweep queue over HTTP.

A thin, dependency-free (stdlib ``http.server``) front end for a
:class:`~repro.service.lease.SweepQueue`.  The server owns **no state**
— every request is answered by replaying the journal — so it can be
killed and restarted at any point, run next to live workers, or run on
a different host that mounts the sweep directory.

Routes
------

``POST /submit``
    Body ``{"specs": [<spec dict>, ...]}`` (the JSON form produced by
    :func:`~repro.service.lease.spec_to_dict`).  Appends submit records
    (idempotent) and returns ``{"keys": [...]}`` in spec order.
``GET /status``
    The full sweep state: per-cell status, attempts, executed-run
    counts, last errors (see :func:`~repro.service.lease.asdict_state`).
``GET /result/<key>``
    The finished cell's :class:`RunResult` as lossless JSON
    (``result_to_full_dict``); 404 while the cell is unfinished or its
    result is not in the cache.
``GET /progress``
    A streaming ``application/x-ndjson`` body: one status-counts line
    per poll interval, ending (with ``"settled": true``) once every
    cell is done or terminally failed.

Shutdown is graceful: SIGTERM/SIGINT stop the accept loop, in-flight
requests finish, and the process exits 0.  Nothing is lost either way —
the journal already holds everything acknowledged.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict

from repro.core.batch import CacheArg, resolve_cache
from repro.core.export import result_to_full_dict
from repro.service.lease import DONE, SweepQueue, asdict_state

#: default poll cadence of the /progress stream, seconds
PROGRESS_INTERVAL = 0.25


class SweepServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the queue + cache for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address,
        queue: SweepQueue,
        cache: CacheArg = None,
        progress_interval: float = PROGRESS_INTERVAL,
    ) -> None:
        super().__init__(address, SweepRequestHandler)
        self.queue = queue
        self.cache = resolve_cache(cache)
        self.progress_interval = float(progress_interval)
        self.draining = threading.Event()


class SweepRequestHandler(BaseHTTPRequestHandler):
    server: SweepServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"

    # quiet by default; tests and `repro serve -v` can re-enable
    def log_message(self, fmt, *args):  # noqa: A003 - BaseHTTPRequestHandler API
        pass

    # ------------------------------------------------------------- plumbing
    def _send_json(self, obj: Any, status: int = 200) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    # --------------------------------------------------------------- routes
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/submit":
            self._send_error_json(404, f"no such route: POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            specs = payload["specs"]
            if not isinstance(specs, list):
                raise ValueError("'specs' must be a list of spec objects")
            keys = self.server.queue.submit(specs)
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"bad submission: {exc}")
            return
        self._send_json({"keys": keys})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/") or "/"
        if path == "/status":
            # status is the natural janitor: it replays the whole
            # journal anyway, so fold it down first if it has outgrown
            # the queue's threshold
            self.server.queue.maybe_compact()
            self._send_json(asdict_state(self.server.queue.state()))
        elif path.startswith("/result/"):
            self._get_result(path[len("/result/") :])
        elif path == "/progress":
            self._stream_progress()
        else:
            self._send_error_json(404, f"no such route: GET {self.path}")

    def _get_result(self, key: str) -> None:
        state = self.server.queue.state()
        cell = state.cells.get(key)
        if cell is None:
            self._send_error_json(404, f"unknown cell {key}")
            return
        if cell.status != DONE:
            self._send_error_json(
                404, f"cell {key} is {cell.status}, not done"
            )
            return
        res = (
            self.server.cache.get(key)
            if self.server.cache is not None
            else None
        )
        if res is None:
            self._send_error_json(
                404, f"cell {key} is done but its result left the cache"
            )
            return
        self._send_json({"key": key, "result": result_to_full_dict(res)})

    def _stream_progress(self) -> None:
        """One counts line per poll until the sweep settles (ndjson)."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            while True:
                state = self.server.queue.state()
                line = json.dumps(
                    {"counts": state.counts(), "settled": state.settled}
                ).encode("utf-8") + b"\n"
                self._write_chunk(line)
                if state.settled or self.server.draining.is_set():
                    break
                time.sleep(self.server.progress_interval)
            self._write_chunk(b"")  # terminal chunk
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()


def make_sweep_server(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8642,
    cache: CacheArg = None,
    lease_duration: float = 60.0,
    retry_budget: int = 3,
) -> SweepServer:
    """Bind a :class:`SweepServer` without starting its accept loop.

    Pass ``port=0`` for an ephemeral port; the bound address is
    ``server.server_address``.  The caller runs ``serve_forever()``
    (tests do so on a thread and stop it with ``shutdown()``).
    """
    queue = SweepQueue(
        root, lease_duration=lease_duration, retry_budget=retry_budget
    )
    return SweepServer((host, port), queue, cache=cache)


def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8642,
    cache: CacheArg = None,
    lease_duration: float = 60.0,
    retry_budget: int = 3,
    install_signals: bool = True,
) -> SweepServer:
    """Run the sweep HTTP server until SIGTERM/SIGINT (graceful).

    With ``install_signals=False`` the caller owns shutdown (call
    ``server.shutdown()`` from another thread).
    """
    server = make_sweep_server(
        root, host=host, port=port, cache=cache,
        lease_duration=lease_duration, retry_budget=retry_budget,
    )
    if install_signals:

        def _drain(signum, frame):
            server.draining.set()
            # shutdown() blocks until the accept loop exits; call it off
            # the signal-handling (main) thread to avoid deadlock
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return server


def summarize_status(status: Dict[str, Any]) -> str:
    """One-line human rendering of a /status payload (CLI helper)."""
    c = status["counts"]
    return (
        f"{c['done']} done, {c['failed']} failed, {c['leased']} leased, "
        f"{c['pending']} pending"
        + (" — settled" if status.get("settled") else "")
    )
