"""The leased sweep worker: claim, run, heartbeat, survive, drain.

A worker is just a process pointed at a sweep directory (and the shared
result cache).  Any number can run concurrently, on any hosts that see
the same paths; none of them is special, and the sweep's correctness
never depends on any one of them surviving:

* **claim** — the worker leases the oldest runnable cell
  (:meth:`SweepQueue.claim`), expiring stale leases as it looks;
* **dedupe** — if the content-addressed result cache already holds the
  cell's key (another worker finished it, or a previous life of this
  sweep did), the cell completes without simulating anything — this is
  what makes re-execution after *any* crash idempotent;
* **heartbeat** — while a cell runs, a daemon thread renews the lease at
  a third of its duration; a worker that dies or wedges stops renewing
  and its cell re-queues when the lease expires;
* **checkpoint** — with ``checkpoint_every`` set, long cells record
  verifiable snapshots (:mod:`repro.service.checkpoint`) so a killed
  worker's successor resumes with a bit-identity proof;
* **drain** — SIGTERM/SIGINT request a graceful drain: the current cell
  finishes, its outcome is journaled, and the loop exits cleanly
  (exit 0) instead of abandoning a lease.

A cell that *raises* is confined: the worker records the failure (with
exponential backoff and the queue's retry budget) and moves on.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.batch import CacheArg, ExperimentSpec, resolve_cache
from repro.core.machine import RunResult
from repro.service.lease import SweepQueue, default_worker_id

ProgressFn = Callable[[str, ExperimentSpec, str], None]


@dataclass
class WorkerStats:
    """What one :meth:`Worker.run` call did."""

    executed: int = 0       #: cells actually simulated
    cached: int = 0         #: cells completed by cache dedupe
    failed: int = 0         #: failed attempts recorded (incl. terminal)
    drained: bool = False   #: loop exited on a drain request
    keys: List[str] = field(default_factory=list)


class _Heartbeat(threading.Thread):
    """Renews one lease until stopped (daemon: dies with the worker)."""

    def __init__(self, queue: SweepQueue, key: str, worker_id: str) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{key[:8]}")
        self.queue = queue
        self.key = key
        self.worker_id = worker_id
        self.interval = max(queue.lease_duration / 3.0, 0.05)
        self._stop = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop.wait(self.interval):
            try:
                self.queue.renew(self.key, self.worker_id)
            except Exception:
                # a failed heartbeat must never kill the simulation; the
                # worst case is the lease expiring and the cell being
                # claimed twice, which the cache dedupes
                pass

    def stop(self) -> None:
        self._stop.set()


class Worker:
    """A leased worker loop over one sweep directory.

    Parameters
    ----------
    queue:
        The :class:`SweepQueue` (or a path-like to build one).
    cache:
        Result-cache argument exactly as :func:`run_batch` takes it
        (None = default on-disk cache).  The cache is the dedupe layer;
        running a durable sweep without one (``False``) still converges
        but loses crash idempotence for *completed* cells.
    worker_id:
        Identity used in lease records (default ``host:pid``).
    poll_interval:
        Seconds to sleep when nothing is claimable yet.
    checkpoint_every:
        When set, run cells under
        :func:`~repro.service.checkpoint.run_with_checkpoints` at this
        cadence (simulated pcycles).
    max_cells:
        Stop after completing/failing this many cells (None = run until
        the sweep settles or a drain is requested).
    progress:
        Optional ``progress(event, spec, key)`` callback; events are
        ``"claim" | "cached" | "done" | "fail"``.
    """

    def __init__(
        self,
        queue: "SweepQueue | str",
        cache: CacheArg = None,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.5,
        checkpoint_every: Optional[float] = None,
        max_cells: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.queue = queue if isinstance(queue, SweepQueue) else SweepQueue(queue)
        self.cache = resolve_cache(cache)
        self.worker_id = worker_id or default_worker_id()
        self.poll_interval = float(poll_interval)
        self.checkpoint_every = checkpoint_every
        self.max_cells = max_cells
        self.progress = progress
        self.draining = False

    # ------------------------------------------------------------- signals
    def request_drain(self, signum=None, frame=None) -> None:
        """Finish the current cell, then exit the loop cleanly."""
        self.draining = True

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT become graceful drains (main thread only)."""
        signal.signal(signal.SIGTERM, self.request_drain)
        signal.signal(signal.SIGINT, self.request_drain)

    # ---------------------------------------------------------------- loop
    def run(self) -> WorkerStats:
        """Pull and run cells until the sweep settles, ``max_cells`` is
        reached, or a drain is requested.  Returns what happened."""
        stats = WorkerStats()
        while not self.draining:
            if (
                self.max_cells is not None
                and len(stats.keys) >= self.max_cells
            ):
                break
            claim = self.queue.claim(self.worker_id)
            if claim is None:
                state = self.queue.state()
                if state.settled:
                    break
                # backed-off or leased-elsewhere cells exist: wait for
                # them to become claimable (or for the sweep to settle)
                time.sleep(self.poll_interval)
                continue
            key, spec, attempt = claim
            stats.keys.append(key)
            self._emit("claim", spec, key)
            self._run_cell(stats, key, spec, attempt)
            # Heartbeats and retries grow the journal forever; fold it
            # down once it passes the queue's threshold so replay cost
            # stays bounded over long sweeps.
            self.queue.maybe_compact()
        stats.drained = self.draining
        return stats

    # ---------------------------------------------------------------- cell
    def _run_cell(
        self, stats: WorkerStats, key: str, spec: ExperimentSpec, attempt: int
    ) -> None:
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.queue.complete(key, self.worker_id, attempt, executed=False)
                stats.cached += 1
                self._emit("cached", spec, key)
                return
        beat = _Heartbeat(self.queue, key, self.worker_id)
        beat.start()
        try:
            res = self._execute(key, spec)
        except Exception as exc:  # noqa: BLE001 - confine to the cell
            beat.stop()
            self.queue.fail(
                key,
                self.worker_id,
                attempt,
                f"{type(exc).__name__}: {exc}",
            )
            stats.failed += 1
            self._emit("fail", spec, key)
            return
        beat.stop()
        if self.cache is not None and isinstance(res, RunResult):
            self.cache.put(key, res)
        from repro.service.checkpoint import clear_checkpoint

        clear_checkpoint(self.queue.checkpoint_path(key))
        self.queue.complete(key, self.worker_id, attempt, executed=True)
        stats.executed += 1
        self._emit("done", spec, key)

    def _execute(self, key: str, spec: ExperimentSpec) -> RunResult:
        if self.checkpoint_every:
            from repro.service.checkpoint import (
                CheckpointDivergence,
                clear_checkpoint,
                run_with_checkpoints,
            )

            path = self.queue.checkpoint_path(key)
            try:
                return run_with_checkpoints(
                    spec, self.checkpoint_every, path
                )
            except CheckpointDivergence:
                # the recorded trajectory is unreproducible (code change
                # mid-sweep, damaged file): fall back to a clean re-run
                # rather than failing the cell
                clear_checkpoint(path)
                return run_with_checkpoints(
                    spec, self.checkpoint_every, path, resume=False
                )
        return spec.run()

    def _emit(self, event: str, spec: ExperimentSpec, key: str) -> None:
        if self.progress is not None:
            self.progress(event, spec, key)
