"""Checkpoint/resume for very large cells: snapshot digests + replay.

A simulation cell is a pure, deterministic function of its
:class:`~repro.core.batch.ExperimentSpec` (per-cell seeding lives in the
``RngRegistry`` substream machinery), so the cheapest *provably correct*
checkpoint is not a serialized heap but a **trajectory attestation**: at
every ``checkpoint_every`` simulated pcycles the engine pauses between
events and a :func:`state_fingerprint` — a SHA-256 over the machine's
observable state (event count, clock, metrics tallies, per-CPU accounts,
page-state census, ring occupancy, network bytes) — is appended to a
crash-safe checkpoint journal.

Resume (:func:`run_with_checkpoints` on an existing checkpoint file)
replays the cell from the start with the *same deterministic slicing*
and verifies every recorded fingerprint as its checkpoint passes; a
single divergent bit in any of those quantities raises
:class:`CheckpointDivergence`.  A resumed run is therefore **provably
bit-identical** to the interrupted one through its last checkpoint, and
— because bounded engine runs are trajectory-neutral (``try_jump``
refuses past a ``run(until=...)`` limit and the evented fallback is
bit-identical, the PR-6 contract) — to an uninterrupted run as well.

Slicing is in simulated time, never wall-clock: wall-clock checkpoints
would slice differently on every host and make fingerprints
incomparable.

This is the ``--checkpoint-every`` substrate used by ``repro run`` and
:class:`~repro.service.worker.Worker` for million-pcycle cells where a
wrong resumed result would silently poison a sweep.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.apps import make_app
from repro.core.batch import ExperimentSpec
from repro.core.cache import canonical
from repro.core.machine import Machine, RunResult
from repro.core.runner import _audit_default, linear_scale
from repro.osim import PageState
from repro.service.journal import Journal

#: bump when the fingerprint's contents change (old files are refused)
CHECKPOINT_VERSION = 1


class CheckpointMismatch(Exception):
    """The checkpoint file on disk belongs to a different cell/cadence."""


class CheckpointDivergence(Exception):
    """A resumed run's state stopped matching its recorded fingerprints.

    This means the replay is *not* reproducing the interrupted run —
    nondeterminism, a code change mid-sweep, or file damage — and the
    result can no longer be attested; the caller should clear the
    checkpoint and re-run the cell from scratch.
    """


def state_fingerprint(machine: Machine) -> str:
    """SHA-256 digest of a machine's observable mid-run state.

    Covers every quantity a finished :class:`RunResult` is built from
    (so two runs with equal fingerprints at every checkpoint cannot
    produce different results) while excluding the quantities that are
    deliberately outside the bit-identity contract: ``events_jumped``
    and the ``epoch_*`` profiler counters, which measure *how* the
    trajectory was executed, not the trajectory itself.
    """
    m = machine.metrics
    payload: Dict[str, Any] = {
        "events": machine.engine.events_processed,
        "now": repr(machine.engine.now),
        "counts": m.counts.as_dict(),
        "tallies": {
            name: _tally_tuple(getattr(m, name))
            for name in (
                "swapout",
                "swapout_wait",
                "fault_latency",
                "disk_hit_latency",
                "ring_hit_latency",
            )
        },
        "phases": m.phases,
        "cpus": [
            {
                "times": dict(c.acct.times),
                "stats": c.stats.as_dict(),
                "started": repr(c.started_at),
                "finished": repr(c.finished_at),
            }
            for c in machine.cpus
        ],
        "network_bytes": machine.network.bytes_sent,
        "pages": {
            s.value: machine.vm.table.count_state(s) for s in PageState
        },
        "ring_stored": (
            machine.ring.total_stored if machine.ring is not None else 0
        ),
        "combining": [
            _tally_tuple(ctrl.combining) for ctrl in machine.controllers
        ],
    }
    blob = json.dumps(
        canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _tally_tuple(t) -> list:
    return [t.n, repr(t._mean), repr(t._m2), repr(t.total),
            repr(t.min), repr(t.max)]


def build_machine(spec: ExperimentSpec) -> "tuple[Machine, Any]":
    """The (machine, workload) pair ``spec.run()`` would execute.

    Mirrors :func:`~repro.core.runner.run_experiment`'s resolution —
    including the ``NWCACHE_AUDIT`` default — on top of the spec's own
    :meth:`~repro.core.batch.ExperimentSpec.resolved_config`.
    """
    cfg = spec.resolved_config()
    if _audit_default() and not cfg.audit:
        cfg = cfg.replace(audit=True)
    workload = make_app(
        spec.app,
        scale=linear_scale(spec.app, spec.data_scale),
        page_size=cfg.page_size,
        **spec.app_params,
    )
    machine = Machine(
        cfg,
        system=spec.system,
        prefetch=spec.prefetch,
        drain_policy=spec.drain_policy,
        compiled_traces=spec.compiled_traces,
    )
    return machine, workload


def clear_checkpoint(path: "Path | str") -> None:
    """Remove a cell's checkpoint file (after completion, or to force a
    from-scratch re-run after a divergence)."""
    p = Path(path)
    try:
        p.unlink()
    except FileNotFoundError:
        pass
    lock = p.with_name(p.name + ".lock")
    try:
        lock.unlink()
    except FileNotFoundError:
        pass


def run_with_checkpoints(
    spec: ExperimentSpec,
    every: float,
    path: "Path | str",
    resume: bool = True,
    on_snapshot: Optional[Callable[[int, str], None]] = None,
) -> RunResult:
    """Run one cell with periodic checkpoints, resuming/verifying if a
    checkpoint file already exists.

    Parameters
    ----------
    spec:
        The cell to run (declarative, as in the batch runner).
    every:
        Checkpoint cadence in simulated **pcycles** (must be a positive
        finite number — simulated time keeps slicing deterministic).
    path:
        The checkpoint journal for this cell.  Callers key it by the
        cell's cache key (see :meth:`SweepQueue.checkpoint_path`).
    resume:
        When False an existing file is ignored and overwritten.
    on_snapshot:
        Optional hook ``(index, fingerprint)`` fired after every
        checkpoint is recorded or verified (tests use it to interrupt
        at exact points).

    Raises
    ------
    CheckpointMismatch:
        The file on disk was recorded for a different cell or cadence.
    CheckpointDivergence:
        Replay stopped matching the recorded fingerprints.
    """
    every = float(every)
    if not math.isfinite(every) or every <= 0:
        raise ValueError(
            f"checkpoint_every must be a positive finite number of "
            f"simulated pcycles, got {every!r}"
        )
    key = spec.key()
    journal = Journal(path)
    recorded: Dict[int, str] = {}
    if resume and journal.exists():
        records = journal.replay()
        if records:
            head = records[0]
            if (
                head.get("type") != "begin"
                or head.get("version") != CHECKPOINT_VERSION
                or head.get("key") != key
                or head.get("every") != repr(every)
            ):
                raise CheckpointMismatch(
                    f"{journal.path} was recorded for a different cell, "
                    f"cadence, or format (expected key {key[:12]}..., "
                    f"every {every:g})"
                )
            for rec in records[1:]:
                if rec.get("type") == "snap":
                    recorded[int(rec["k"])] = rec["fp"]
    if not recorded:
        # fresh start (or ignored/empty file): truncate and re-begin
        clear_checkpoint(journal.path)
        journal.append(
            {
                "type": "begin",
                "version": CHECKPOINT_VERSION,
                "key": key,
                "app": spec.app,
                "system": spec.system,
                "every": repr(every),
            }
        )

    machine, workload = build_machine(spec)
    seen = 0

    def on_checkpoint(m: Machine) -> None:
        nonlocal seen
        seen += 1
        fp = state_fingerprint(m)
        prior = recorded.get(seen)
        if prior is not None:
            if prior != fp:
                raise CheckpointDivergence(
                    f"checkpoint {seen} (t={m.engine.now:g}) diverged from "
                    f"the recorded run: {prior[:12]}... != {fp[:12]}...; "
                    "clear the checkpoint and re-run from scratch"
                )
        else:
            journal.append(
                {
                    "type": "snap",
                    "k": seen,
                    "t": repr(m.engine.now),
                    "events": m.engine.events_processed,
                    "fp": fp,
                }
            )
        if on_snapshot is not None:
            on_snapshot(seen, fp)

    return machine.run(
        workload, checkpoint_every=every, on_checkpoint=on_checkpoint
    )
