"""NWCache reproduction: an optical network/write-cache hybrid simulator.

Reproduces *"NWCache: Optimizing Disk Accesses via an Optical
Network/Write Cache Hybrid"* (Carrera & Bianchini, IPPS 1999): an
execution-driven, event-based simulation of an 8-node CC-NUMA
multiprocessor whose page swap-outs are optimized by storing them on a
WDM optical ring that doubles as a system-wide write cache.

Quickstart
----------
>>> from repro import run_pair
>>> std, nwc = run_pair("sor", prefetch="optimal", data_scale=0.1)
>>> nwc.swapout_mean < std.swapout_mean
True

See README.md for the architecture overview, ``examples/`` for runnable
scenarios, and ``benchmarks/`` for the scripts regenerating every table
and figure in the paper's evaluation.
"""

from repro.apps import APP_NAMES, make_app
from repro.config import SimConfig
from repro.core import (
    BEST_MIN_FREE,
    Machine,
    RunResult,
    SYSTEM_NWCACHE,
    SYSTEM_STANDARD,
    experiment_config,
    run_experiment,
    run_pair,
)
from repro.metrics import Metrics

__version__ = "0.1.0"

__all__ = [
    "APP_NAMES",
    "BEST_MIN_FREE",
    "Machine",
    "Metrics",
    "RunResult",
    "SYSTEM_NWCACHE",
    "SYSTEM_STANDARD",
    "SimConfig",
    "__version__",
    "experiment_config",
    "make_app",
    "run_experiment",
    "run_pair",
]
